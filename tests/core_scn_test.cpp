#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/occurrence_index.h"
#include "core/scn_builder.h"
#include "graph/components.h"
#include "testing_utils.h"

namespace iuad::core {
namespace {

using graph::CollabGraph;
using graph::VertexId;

/// Finds the unique alive vertex of `name` whose paper set equals `papers`.
VertexId FindVertex(const CollabGraph& g, const std::string& name,
                    std::vector<int> papers) {
  std::sort(papers.begin(), papers.end());
  VertexId found = -1;
  for (VertexId v : g.VerticesWithName(name)) {
    if (g.vertex(v).papers == papers) {
      EXPECT_EQ(found, -1) << "duplicate vertex for " << name;
      found = v;
    }
  }
  return found;
}

class Fig2ScnTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = iuad::testing::Fig2Database();
    IuadConfig cfg;
    cfg.eta = 2;
    ScnBuilder builder(cfg);
    auto stats = builder.Build(db_, &graph_, &occ_);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    stats_ = *stats;
  }

  data::PaperDatabase db_;
  CollabGraph graph_;
  OccurrenceIndex occ_;
  ScnStats stats_;
};

TEST_F(Fig2ScnTest, MinesTheSixExpected2Scrs) {
  // Sec. IV-C running example: (a,b), (a,c), (a,d), (b,c), (b,e), (c,d).
  EXPECT_EQ(stats_.num_scrs, 6);
}

TEST_F(Fig2ScnTest, ReproducesFigure2VertexSet) {
  // Main component: a{p1..p4}, b{p1,p3,p4}, c{p1..p4}, d{p1,p2}.
  EXPECT_NE(FindVertex(graph_, "a", {0, 1, 2, 3}), -1);
  EXPECT_NE(FindVertex(graph_, "b", {0, 2, 3}), -1);
  EXPECT_NE(FindVertex(graph_, "c", {0, 1, 2, 3}), -1);
  EXPECT_NE(FindVertex(graph_, "d", {0, 1}), -1);
  // Second stable component: b{p5,p6} - e{p5,p6}.
  EXPECT_NE(FindVertex(graph_, "b", {4, 5}), -1);
  EXPECT_NE(FindVertex(graph_, "e", {4, 5}), -1);
  // Singletons: b{p7}, f{p7}, b{p8}, g{p8}.
  EXPECT_NE(FindVertex(graph_, "b", {6}), -1);
  EXPECT_NE(FindVertex(graph_, "f", {6}), -1);
  EXPECT_NE(FindVertex(graph_, "b", {7}), -1);
  EXPECT_NE(FindVertex(graph_, "g", {7}), -1);
  // Exactly 10 vertices: 4 + 2 + 4 (Fig. 2's SCN panel).
  EXPECT_EQ(graph_.num_alive(), 10);
  EXPECT_EQ(stats_.num_vertices, 10);
  // Name b has four distinct candidate vertices (bottom-up!).
  EXPECT_EQ(graph_.VerticesWithName("b").size(), 4u);
}

TEST_F(Fig2ScnTest, ReproducesFigure2EdgeSet) {
  EXPECT_EQ(graph_.num_edges(), 6);
  const VertexId a = FindVertex(graph_, "a", {0, 1, 2, 3});
  const VertexId b = FindVertex(graph_, "b", {0, 2, 3});
  const VertexId c = FindVertex(graph_, "c", {0, 1, 2, 3});
  const VertexId d = FindVertex(graph_, "d", {0, 1});
  // Edge paper sets from Fig. 2.
  EXPECT_EQ(graph_.NeighborsOf(a).at(b), (std::vector<int>{0, 2, 3}));
  EXPECT_EQ(graph_.NeighborsOf(a).at(c), (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(graph_.NeighborsOf(a).at(d), (std::vector<int>{0, 1}));
  EXPECT_EQ(graph_.NeighborsOf(b).at(c), (std::vector<int>{0, 2, 3}));
  EXPECT_EQ(graph_.NeighborsOf(c).at(d), (std::vector<int>{0, 1}));
  // No b-d edge: (b,d) co-occurs only once.
  EXPECT_EQ(graph_.NeighborsOf(b).count(d), 0u);
  // The second component's edge carries {p5, p6}.
  const VertexId b2 = FindVertex(graph_, "b", {4, 5});
  const VertexId e = FindVertex(graph_, "e", {4, 5});
  EXPECT_EQ(graph_.NeighborsOf(b2).at(e), (std::vector<int>{4, 5}));
}

TEST_F(Fig2ScnTest, EveryOccurrenceIsAttributed) {
  int64_t occurrences = 0;
  for (const auto& p : db_.papers()) {
    for (const auto& name : p.author_names) {
      const VertexId v = occ_.Lookup(p.id, name);
      ASSERT_GE(v, 0) << "paper " << p.id << " name " << name;
      EXPECT_TRUE(graph_.alive(v));
      EXPECT_EQ(graph_.NameOf(v), name);
      // The vertex's paper set contains the paper.
      const auto& papers = graph_.vertex(v).papers;
      EXPECT_TRUE(std::binary_search(papers.begin(), papers.end(), p.id));
      ++occurrences;
    }
  }
  EXPECT_EQ(occurrences, db_.author_paper_pairs());
}

TEST_F(Fig2ScnTest, SingletonCountMatchesFigure) {
  // Uncovered occurrences: (p7,b), (p7,f), (p8,b), (p8,g).
  EXPECT_EQ(stats_.singleton_occurrences, 4);
  EXPECT_EQ(stats_.conflict_merges, 0);
}

TEST_F(Fig2ScnTest, ComponentsMatchFigure) {
  int n = 0;
  graph::ConnectedComponents(graph_, &n);
  // {a,b,c,d}, {b,e}, and 4 isolated = 6 components.
  EXPECT_EQ(n, 6);
}

TEST(ScnBuilderTest, RequiresEmptyGraph) {
  auto db = iuad::testing::Fig2Database();
  CollabGraph g;
  g.AddVertex("pre-existing", {});
  OccurrenceIndex occ;
  ScnBuilder builder(IuadConfig{});
  EXPECT_FALSE(builder.Build(db, &g, &occ).ok());
}

TEST(ScnBuilderTest, HigherEtaMinesFewerScrs) {
  auto db = iuad::testing::Fig2Database();
  IuadConfig cfg;
  cfg.eta = 3;
  CollabGraph g;
  OccurrenceIndex occ;
  ScnBuilder builder(cfg);
  auto stats = builder.Build(db, &g, &occ);
  ASSERT_TRUE(stats.ok());
  // Only (a,b): 3, (a,c): 4, (b,c): 3 survive η = 3.
  EXPECT_EQ(stats->num_scrs, 3);
}

TEST(ScnBuilderTest, EtaAboveAllCountsYieldsAllSingletons) {
  auto db = iuad::testing::Fig2Database();
  IuadConfig cfg;
  cfg.eta = 100;
  CollabGraph g;
  OccurrenceIndex occ;
  ScnBuilder builder(cfg);
  auto stats = builder.Build(db, &g, &occ);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->num_scrs, 0);
  EXPECT_EQ(stats->num_edges, 0);
  // One singleton per byline occurrence.
  EXPECT_EQ(g.num_alive(), static_cast<int>(db.author_paper_pairs()));
}

TEST(ScnBuilderTest, TriangleGateSeparatesContexts) {
  // Two disjoint contexts both containing name "x":
  //   context 1: x writes with u (twice), u with w, x with w  -> triangle
  //   context 2: x writes with q (twice); q never meets u/w.
  // With the gate, inserting (x,q) must NOT reuse the context-1 x vertex.
  data::PaperDatabase db;
  db.AddPaper(iuad::testing::MakePaper({"x", "u", "w"}));
  db.AddPaper(iuad::testing::MakePaper({"x", "u", "w"}));
  db.AddPaper(iuad::testing::MakePaper({"x", "q"}));
  db.AddPaper(iuad::testing::MakePaper({"x", "q"}));

  IuadConfig gated;
  gated.eta = 2;
  gated.triangle_gated_insertion = true;
  CollabGraph g1;
  OccurrenceIndex o1;
  ASSERT_TRUE(ScnBuilder(gated).Build(db, &g1, &o1).ok());
  EXPECT_EQ(g1.VerticesWithName("x").size(), 2u);

  IuadConfig ungated = gated;
  ungated.triangle_gated_insertion = false;
  CollabGraph g2;
  OccurrenceIndex o2;
  ASSERT_TRUE(ScnBuilder(ungated).Build(db, &g2, &o2).ok());
  // Ablation arm: same-name endpoints merge unconditionally.
  EXPECT_EQ(g2.VerticesWithName("x").size(), 1u);
}

TEST(ScnBuilderTest, ConflictMergeUnifiesSharedOccurrence) {
  // Paper p0 = [x, u, q] plus repeats making both (x,u) and (x,q) SCRs, but
  // u and q never co-occur twice with each other: the triangle gate would
  // create two x vertices, yet both SCRs cover occurrence (p0, x) — the
  // builder must detect the conflict and merge them.
  data::PaperDatabase db;
  db.AddPaper(iuad::testing::MakePaper({"x", "u", "q"}));
  db.AddPaper(iuad::testing::MakePaper({"x", "u"}));
  db.AddPaper(iuad::testing::MakePaper({"x", "q"}));

  IuadConfig cfg;
  cfg.eta = 2;
  CollabGraph g;
  OccurrenceIndex occ;
  auto stats = ScnBuilder(cfg).Build(db, &g, &occ);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(g.VerticesWithName("x").size(), 1u);
  EXPECT_GE(stats->conflict_merges, 1);
  // The merged x vertex holds all three papers.
  const graph::VertexId x = g.VerticesWithName("x").front();
  EXPECT_EQ(g.vertex(x).papers, (std::vector<int>{0, 1, 2}));
}

TEST(ScnBuilderTest, OccurrenceInvariantsOnSyntheticCorpus) {
  auto corpus = iuad::testing::SmallCorpus();
  IuadConfig cfg;
  CollabGraph g;
  OccurrenceIndex occ;
  auto stats = ScnBuilder(cfg).Build(corpus.db, &g, &occ);
  ASSERT_TRUE(stats.ok());
  // Every byline occurrence is attributed to an alive vertex of that name.
  for (const auto& p : corpus.db.papers()) {
    for (const auto& name : p.author_names) {
      const VertexId v = occ.Lookup(p.id, name);
      ASSERT_GE(v, 0);
      ASSERT_TRUE(g.alive(v));
      EXPECT_EQ(g.NameOf(v), name);
    }
  }
  EXPECT_GT(stats->num_scrs, 100);
  EXPECT_GT(stats->num_edges, 0);
}

TEST(ScnBuilderTest, ScnEdgesAreHighPrecisionOnSyntheticCorpus) {
  // The SCN's core claim (Sec. IV): vertices formed from stable relations
  // almost never mix two real authors. Measure occurrence-level purity.
  auto corpus = iuad::testing::SmallCorpus();
  IuadConfig cfg;
  CollabGraph g;
  OccurrenceIndex occ;
  ASSERT_TRUE(ScnBuilder(cfg).Build(corpus.db, &g, &occ).ok());

  int64_t pure = 0, impure = 0;
  for (VertexId v : g.AliveVertices()) {
    const auto& vertex = g.vertex(v);
    if (vertex.papers.size() < 2) continue;
    std::set<data::AuthorId> authors;
    for (int pid : vertex.papers) {
      const auto a =
          corpus.db.paper(pid).TrueAuthorOfName(std::string(g.NameOf(v)));
      if (a != data::kUnknownAuthor) authors.insert(a);
    }
    if (authors.size() <= 1) {
      ++pure;
    } else {
      ++impure;
    }
  }
  ASSERT_GT(pure + impure, 0);
  const double purity =
      static_cast<double>(pure) / static_cast<double>(pure + impure);
  EXPECT_GT(purity, 0.9);
}

// --------------------------- OccurrenceIndex --------------------------------

TEST(OccurrenceIndexTest, AssignAndLookup) {
  OccurrenceIndex occ;
  EXPECT_EQ(occ.Lookup(0, "x"), -1);
  EXPECT_EQ(occ.AssignIfAbsent(0, "x", 5), 5);
  EXPECT_EQ(occ.Lookup(0, "x"), 5);
  // Second assignment returns the existing owner.
  EXPECT_EQ(occ.AssignIfAbsent(0, "x", 9), 5);
  EXPECT_EQ(occ.size(), 1);
}

TEST(OccurrenceIndexTest, MergeAliasing) {
  OccurrenceIndex occ;
  occ.AssignIfAbsent(0, "x", 5);
  occ.AssignIfAbsent(1, "x", 6);
  occ.RecordMerge(5, 6);
  EXPECT_EQ(occ.Lookup(1, "x"), 5);
  // Chained merges resolve transitively.
  occ.AssignIfAbsent(2, "x", 7);
  occ.RecordMerge(7, 5);
  EXPECT_EQ(occ.Lookup(0, "x"), 7);
  EXPECT_EQ(occ.Lookup(1, "x"), 7);
  EXPECT_EQ(occ.Resolve(6), 7);
}

TEST(OccurrenceIndexTest, SelfMergeIsNoop) {
  OccurrenceIndex occ;
  occ.AssignIfAbsent(0, "x", 3);
  occ.RecordMerge(3, 3);
  EXPECT_EQ(occ.Lookup(0, "x"), 3);
}

TEST(OccurrenceIndexTest, ClustersOfName) {
  OccurrenceIndex occ;
  occ.AssignIfAbsent(0, "x", 1);
  occ.AssignIfAbsent(1, "x", 1);
  occ.AssignIfAbsent(2, "x", 2);
  auto clusters = occ.ClustersOfName("x", {0, 1, 2});
  ASSERT_EQ(clusters.size(), 2u);
  EXPECT_EQ(clusters[1], (std::vector<int>{0, 1}));
  EXPECT_EQ(clusters[2], (std::vector<int>{2}));
}

TEST(OccurrenceIndexTest, NamesAreIndependentKeys) {
  OccurrenceIndex occ;
  occ.AssignIfAbsent(0, "x", 1);
  occ.AssignIfAbsent(0, "y", 2);
  EXPECT_EQ(occ.Lookup(0, "x"), 1);
  EXPECT_EQ(occ.Lookup(0, "y"), 2);
}

}  // namespace
}  // namespace iuad::core
