#ifndef IUAD_TESTS_TESTING_UTILS_H_
#define IUAD_TESTS_TESTING_UTILS_H_

/// Shared fixtures: tiny hand-built corpora (including the paper's running
/// example of Fig. 2/4) and small synthetic corpora sized for fast tests.

#include <string>
#include <vector>

#include "data/corpus_generator.h"
#include "data/paper_database.h"

namespace iuad::testing {

/// One paper from byline names only (title/venue/year defaulted but valid).
inline data::Paper MakePaper(std::vector<std::string> names,
                             std::string title = "untitled work",
                             std::string venue = "VenueX", int year = 2010,
                             std::vector<data::AuthorId> truth = {}) {
  data::Paper p;
  p.author_names = std::move(names);
  p.title = std::move(title);
  p.venue = std::move(venue);
  p.year = year;
  p.true_author_ids = std::move(truth);
  return p;
}

/// The running example of Fig. 2 / Fig. 4:
///   p1:[a,b,c,d] p2:[a,c,d] p3:[a,b,c] p4:[a,b,c]
///   p5:[b,e]     p6:[b,e]   p7:[b,f]   p8:[b,g]
/// With η = 2 the 2-SCRs are exactly {a,b},{a,c},{a,d},{b,c},{b,e},{c,d}.
inline data::PaperDatabase Fig2Database() {
  data::PaperDatabase db;
  db.AddPaper(MakePaper({"a", "b", "c", "d"}, "alpha beta gamma"));
  db.AddPaper(MakePaper({"a", "c", "d"}, "alpha gamma delta"));
  db.AddPaper(MakePaper({"a", "b", "c"}, "alpha beta"));
  db.AddPaper(MakePaper({"a", "b", "c"}, "beta gamma"));
  db.AddPaper(MakePaper({"b", "e"}, "epsilon work"));
  db.AddPaper(MakePaper({"b", "e"}, "epsilon revisited"));
  db.AddPaper(MakePaper({"b", "f"}, "phi study"));
  db.AddPaper(MakePaper({"b", "g"}, "gamma omega"));
  return db;
}

/// Small, fast synthetic corpus (fixed seed) for pipeline tests. Name pools
/// are sized for DBLP-like collision rates: most names unique, a Zipf head
/// of names shared by several authors (see DESIGN.md §2).
inline data::Corpus SmallCorpus(uint64_t seed = 11) {
  data::CorpusConfig cfg;
  cfg.num_communities = 12;
  cfg.authors_per_community = 50;
  cfg.num_papers = 2500;
  cfg.given_name_pool = 140;
  cfg.surname_pool = 110;
  cfg.name_zipf = 0.6;
  cfg.seed = seed;
  return data::CorpusGenerator(cfg).Generate();
}

}  // namespace iuad::testing

#endif  // IUAD_TESTS_TESTING_UTILS_H_
