/// The typed query/ingest API (src/api): strict JSON reader behavior,
/// canonical wire-codec round-trips (encode→decode→encode byte-identical
/// for every request/response variant, fuzz-style), malformed-input
/// rejection, and the acceptance-criteria equivalence — a scripted NDJSON
/// session through api::Dispatcher / api::Server produces assignments
/// byte-identical to driving serve::Frontend::Submit directly, at 1 and 4
/// shards.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "api/codec.h"
#include "api/dispatcher.h"
#include "api/server.h"
#include "core/pipeline.h"
#include "serve/frontend.h"
#include "serve/ingest_service.h"
#include "shard/shard_router.h"
#include "testing_utils.h"
#include "util/json_reader.h"

namespace iuad::api {
namespace {

// ---- Strict JSON reader -----------------------------------------------------

TEST(JsonReaderTest, ParsesScalarsArraysAndObjects) {
  auto v = util::ParseJson(
      R"({"a": 1, "b": -2.5, "c": "x\ny", "d": [true, null, 1e2], "e": {}})");
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  ASSERT_TRUE(v->is_object());
  EXPECT_EQ(v->Find("a")->as_int(), 1);
  EXPECT_TRUE(v->Find("a")->is_int());
  EXPECT_DOUBLE_EQ(v->Find("b")->as_double(), -2.5);
  EXPECT_TRUE(v->Find("b")->is_double());
  EXPECT_EQ(v->Find("c")->as_string(), "x\ny");
  const auto& items = v->Find("d")->items();
  ASSERT_EQ(items.size(), 3u);
  EXPECT_TRUE(items[0].as_bool());
  EXPECT_TRUE(items[1].is_null());
  EXPECT_TRUE(items[2].is_double());  // exponent notation is not integral
  EXPECT_DOUBLE_EQ(items[2].as_double(), 100.0);
  EXPECT_TRUE(v->Find("e")->is_object());
  EXPECT_EQ(v->Find("missing"), nullptr);
}

TEST(JsonReaderTest, DecodesEscapesIncludingSurrogatePairs) {
  auto v = util::ParseJson(R"("\"\\\/\b\f\n\r\t\u0041\u00e9\ud83d\ude00")");
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ(v->as_string(),
            "\"\\/\b\f\n\r\tA\xc3\xa9\xf0\x9f\x98\x80");
}

TEST(JsonReaderTest, RejectsMalformedDocuments) {
  const char* bad[] = {
      "",                        // nothing
      "{",                       // truncated object
      "[1, 2",                   // truncated array
      "\"abc",                   // unterminated string
      "{\"a\": }",               // missing value
      "{\"a\": 1,}",             // trailing comma
      "[1, , 2]",                // hole
      "{'a': 1}",                // wrong quotes
      "{\"a\": 1} x",            // trailing content
      "{\"a\": 1}{\"b\": 2}",    // two documents
      "{\"a\": 1, \"a\": 2}",    // duplicate key
      "01",                      // leading zero
      "1.",                      // bare fraction dot
      "+1",                      // explicit plus
      ".5",                      // missing integer part
      "1e",                      // empty exponent
      "nan",                     // not a JSON literal
      "inf",                     //
      "tru",                     // truncated literal
      "\"\\u12\"",               // truncated escape
      "\"\\ud800\"",             // lone high surrogate
      "\"\\udc00\"",             // lone low surrogate
      "\"\x01\"",                // raw control character
      "\"\\x41\"",               // invalid escape
      "1e999",                   // overflows to inf
  };
  for (const char* text : bad) {
    auto v = util::ParseJson(text);
    EXPECT_FALSE(v.ok()) << "accepted: " << text;
    if (!v.ok()) {
      EXPECT_EQ(v.status().code(), StatusCode::kInvalidArgument);
    }
  }
}

TEST(JsonReaderTest, EnforcesSizeAndDepthLimits) {
  util::JsonReaderOptions tight;
  tight.max_bytes = 16;
  EXPECT_FALSE(util::ParseJson("{\"key\": \"0123456789\"}", tight).ok());
  EXPECT_TRUE(util::ParseJson("{\"k\": 1}", tight).ok());

  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_FALSE(util::ParseJson(deep).ok());  // default max_depth = 64
  util::JsonReaderOptions roomy;
  roomy.max_depth = 200;
  EXPECT_TRUE(util::ParseJson(deep, roomy).ok());
}

// ---- Canonical codec round-trips (fuzz-style) -------------------------------

/// Deterministic pseudo-random message material: printable ASCII plus the
/// characters the escaper special-cases plus multi-byte UTF-8.
std::string RandomString(std::mt19937_64* rng) {
  static const char* pool[] = {
      "a", "Z", "0", " ", "\"", "\\", "/", "\n", "\t", "\r", "\x01", "\x1f",
      "é", "名", "😀", "d.", "-", "{", "}", "[", "]", ":", ","};
  std::uniform_int_distribution<size_t> len(0, 12);
  std::uniform_int_distribution<size_t> pick(
      0, sizeof(pool) / sizeof(pool[0]) - 1);
  std::string s;
  const size_t n = len(*rng);
  for (size_t i = 0; i < n; ++i) s += pool[pick(*rng)];
  return s;
}

int64_t RandomInt(std::mt19937_64* rng) {
  std::uniform_int_distribution<int> shape(0, 3);
  switch (shape(*rng)) {
    case 0: return std::uniform_int_distribution<int64_t>(-5, 5)(*rng);
    case 1: return std::uniform_int_distribution<int64_t>(0, 1 << 30)(*rng);
    case 2:
      return std::uniform_int_distribution<int64_t>(
          std::numeric_limits<int64_t>::min(),
          std::numeric_limits<int64_t>::max())(*rng);
    default: return 0;
  }
}

double RandomScore(std::mt19937_64* rng) {
  std::uniform_int_distribution<int> shape(0, 6);
  switch (shape(*rng)) {
    case 0: return 0.0;
    case 1: return -2.0;  // integral double: %.17g prints it as "-2"
    case 2: return std::uniform_real_distribution<double>(-10, 10)(*rng);
    case 3: return 1e300;
    case 4:
      // Zero candidates score -inf in the real system (wire form "-inf").
      return -std::numeric_limits<double>::infinity();
    case 5: return std::numeric_limits<double>::infinity();
    default: return -1.2345678901234567e-8;
  }
}

data::Paper RandomPaper(std::mt19937_64* rng) {
  data::Paper p;
  p.title = RandomString(rng);
  p.venue = RandomString(rng);
  p.year = static_cast<int>(
      std::uniform_int_distribution<int>(1900, 2100)(*rng));
  std::uniform_int_distribution<size_t> count(1, 4);
  const size_t authors = count(*rng);
  for (size_t i = 0; i < authors; ++i) {
    p.author_names.push_back(RandomString(rng));
  }
  if (std::uniform_int_distribution<int>(0, 1)(*rng) == 1) {
    for (size_t i = 0; i < authors; ++i) {
      p.true_author_ids.push_back(
          std::uniform_int_distribution<int>(-1, 100)(*rng));
    }
  }
  return p;
}

Request RandomRequest(std::mt19937_64* rng) {
  Request r;
  r.id = RandomInt(rng);
  std::uniform_int_distribution<int> op(0, 6);
  r.op = static_cast<Op>(op(*rng));
  switch (r.op) {
    case Op::kIngest: {
      std::uniform_int_distribution<size_t> count(1, 4);
      const size_t papers = count(*rng);
      for (size_t i = 0; i < papers; ++i) {
        r.ingest.papers.push_back(RandomPaper(rng));
      }
      break;
    }
    case Op::kQueryAuthors:
      r.query_authors.name = RandomString(rng);
      break;
    case Op::kQueryPublications:
      r.query_publications.vertex = RandomInt(rng);
      break;
    case Op::kFlush:
    case Op::kStats:
    case Op::kMetrics:
    case Op::kTrace:
      break;
  }
  return r;
}

/// Random but valid registry snapshot: sparse histogram buckets with
/// strictly increasing indices and count == bucket sum, the invariants
/// the strict decoder enforces.
obs::RegistrySnapshot RandomMetrics(std::mt19937_64* rng) {
  obs::RegistrySnapshot m;
  std::uniform_int_distribution<size_t> small(0, 3);
  const size_t counters = small(*rng);
  for (size_t i = 0; i < counters; ++i) {
    m.counters.push_back({RandomString(rng), RandomInt(rng)});
  }
  const size_t gauges = small(*rng);
  for (size_t i = 0; i < gauges; ++i) {
    m.gauges.push_back({RandomString(rng), RandomInt(rng)});
  }
  const size_t histograms = small(*rng);
  for (size_t i = 0; i < histograms; ++i) {
    obs::HistogramSnapshot h;
    h.name = RandomString(rng);
    std::uniform_int_distribution<int> stride(1, 17);
    std::uniform_int_distribution<int64_t> bucket_count(1, 1000);
    for (int idx = stride(*rng) - 1; idx < obs::Histogram::kNumBuckets;
         idx += stride(*rng)) {
      const int64_t c = bucket_count(*rng);
      h.buckets.emplace_back(idx, c);
      h.count += c;
    }
    h.sum_ns = std::uniform_int_distribution<int64_t>(0, 1 << 30)(*rng);
    h.max_ns = std::uniform_int_distribution<int64_t>(0, 1 << 30)(*rng);
    m.histograms.push_back(std::move(h));
  }
  return m;
}

/// Random but canonical trace payload: "dur" appears exactly when the
/// phase is "X", pid is always 1 — the invariants the strict decoder
/// enforces and the canonical encoder emits.
std::vector<obs::ChromeTraceEvent> RandomTrace(std::mt19937_64* rng) {
  std::vector<obs::ChromeTraceEvent> trace;
  std::uniform_int_distribution<size_t> small(0, 5);
  const size_t n = small(*rng);
  for (size_t i = 0; i < n; ++i) {
    obs::ChromeTraceEvent e;
    e.name = RandomString(rng);
    e.ph = std::uniform_int_distribution<int>(0, 1)(*rng) == 0 ? 'X' : 'i';
    e.ts_us = std::uniform_int_distribution<int64_t>(0, 1LL << 40)(*rng);
    if (e.ph == 'X') {
      e.dur_us = std::uniform_int_distribution<int64_t>(0, 1 << 20)(*rng);
    }
    e.tid = std::uniform_int_distribution<int>(0, 63)(*rng);
    e.a0 = RandomInt(rng);
    e.a1 = RandomInt(rng);
    trace.push_back(std::move(e));
  }
  return trace;
}

Response RandomResponse(std::mt19937_64* rng) {
  Response r;
  r.id = RandomInt(rng);
  std::uniform_int_distribution<int> op(0, 6);
  r.op = static_cast<Op>(op(*rng));
  if (std::uniform_int_distribution<int>(0, 3)(*rng) == 0) {
    static const StatusCode codes[] = {
        StatusCode::kInvalidArgument,    StatusCode::kNotFound,
        StatusCode::kFailedPrecondition, StatusCode::kResourceExhausted,
        StatusCode::kIoError,            StatusCode::kInternal};
    r.status = iuad::Status(
        codes[std::uniform_int_distribution<size_t>(0, 5)(*rng)],
        RandomString(rng));
    return r;
  }
  std::uniform_int_distribution<size_t> small(0, 3);
  switch (r.op) {
    case Op::kIngest: {
      const size_t papers = small(*rng);
      for (size_t i = 0; i < papers; ++i) {
        std::vector<core::IncrementalAssignment> per_paper;
        const size_t n = small(*rng);
        for (size_t j = 0; j < n; ++j) {
          core::IncrementalAssignment a;
          a.name = RandomString(rng);
          a.vertex = static_cast<int>(
              std::uniform_int_distribution<int>(-1, 1000)(*rng));
          a.created_new = std::uniform_int_distribution<int>(0, 1)(*rng) == 1;
          a.best_score = RandomScore(rng);
          a.num_candidates =
              std::uniform_int_distribution<int>(0, 50)(*rng);
          per_paper.push_back(a);
        }
        r.assignments.push_back(std::move(per_paper));
      }
      break;
    }
    case Op::kQueryAuthors: {
      const size_t n = small(*rng);
      for (size_t i = 0; i < n; ++i) {
        r.authors.push_back(
            {std::uniform_int_distribution<int>(0, 1000)(*rng),
             std::uniform_int_distribution<int>(0, 99)(*rng)});
      }
      break;
    }
    case Op::kQueryPublications: {
      const size_t n = small(*rng);
      for (size_t i = 0; i < n; ++i) {
        r.paper_ids.push_back(
            std::uniform_int_distribution<int>(0, 100000)(*rng));
      }
      break;
    }
    case Op::kFlush:
      r.applied = RandomInt(rng);
      break;
    case Op::kStats: {
      r.stats.epoch = RandomInt(rng);
      r.stats.papers_applied = RandomInt(rng);
      r.stats.assignments = RandomInt(rng);
      r.stats.new_authors = RandomInt(rng);
      r.stats.num_alive_vertices =
          std::uniform_int_distribution<int>(0, 1 << 20)(*rng);
      r.stats.num_edges = std::uniform_int_distribution<int>(0, 1 << 20)(*rng);
      r.stats.queued_now = std::uniform_int_distribution<int>(0, 999)(*rng);
      r.stats.reorder_held = std::uniform_int_distribution<int>(0, 99)(*rng);
      r.stats.queue_capacity =
          std::uniform_int_distribution<int>(1, 4096)(*rng);
      r.stats.pipeline_depth =
          std::uniform_int_distribution<int>(1, 64)(*rng);
      r.stats.pipeline_windows = RandomInt(rng);
      // Exercise both integral and fractional doubles through the
      // shortest-exact encoder.
      r.stats.pipeline_occupancy =
          std::uniform_int_distribution<int>(0, 64)(*rng) / 8.0;
      r.stats.conflict_stalls = RandomInt(rng);
      r.stats.speculative_rescores = RandomInt(rng);
      r.stats.rss_mb =
          std::uniform_int_distribution<int>(0, 64000)(*rng) / 8.0;
      r.stats.uptime_seconds =
          std::uniform_int_distribution<int>(0, 1 << 20)(*rng) / 16.0;
      r.stats.wal_appended = RandomInt(rng);
      r.stats.wal_fsyncs = RandomInt(rng);
      r.stats.wal_bytes = RandomInt(rng);
      r.stats.recovery_replayed = RandomInt(rng);
      r.stats.wal_last_checkpoint_seq = RandomInt(rng);
      // Includes the no-checkpoint sentinel (-1) and fractional ages.
      r.stats.wal_last_checkpoint_age_s =
          std::uniform_int_distribution<int>(-8, 1 << 20)(*rng) / 8.0;
      r.stats.wal_fsync_wait_us_p99 =
          std::uniform_int_distribution<int>(0, 1 << 20)(*rng) / 16.0;
      const size_t exemplars = small(*rng);
      for (size_t e = 0; e < exemplars; ++e) {
        obs::SlowCommitExemplar ex;
        ex.seq = RandomInt(rng);
        ex.total_ns = RandomInt(rng);
        const size_t stages = small(*rng);
        for (size_t s = 0; s < stages; ++s) {
          ex.stages.push_back({RandomString(rng), RandomInt(rng)});
        }
        const size_t deferrals = small(*rng);
        for (size_t d = 0; d < deferrals; ++d) {
          ex.deferrals.push_back({RandomString(rng), RandomInt(rng)});
        }
        r.stats.slow_commits.push_back(std::move(ex));
      }
      const size_t shards = small(*rng);
      r.stats.num_shards = static_cast<int>(shards == 0 ? 1 : shards);
      for (size_t s = 0; s < shards; ++s) {
        serve::ShardHealth h;
        h.shard = static_cast<int>(s);
        h.owned_blocks = RandomInt(rng);
        h.placement_weight = RandomInt(rng);
        h.papers_scored = RandomInt(rng);
        h.bylines_scored = RandomInt(rng);
        h.assignments = RandomInt(rng);
        h.new_authors = RandomInt(rng);
        r.stats.shards.push_back(h);
      }
      break;
    }
    case Op::kMetrics:
      r.metrics = RandomMetrics(rng);
      break;
    case Op::kTrace:
      r.trace = RandomTrace(rng);
      break;
  }
  return r;
}

TEST(ApiCodecTest, RequestRoundTripIsByteIdentical) {
  std::mt19937_64 rng(20260726);
  for (int i = 0; i < 400; ++i) {
    const Request request = RandomRequest(&rng);
    const std::string wire = EncodeRequest(request);
    EXPECT_EQ(wire.find('\n'), std::string::npos) << wire;
    auto decoded = DecodeRequest(wire);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString() << "\n" << wire;
    EXPECT_EQ(EncodeRequest(*decoded), wire);
  }
}

TEST(ApiCodecTest, ResponseRoundTripIsByteIdentical) {
  std::mt19937_64 rng(42);
  for (int i = 0; i < 400; ++i) {
    const Response response = RandomResponse(&rng);
    const std::string wire = EncodeResponse(response);
    EXPECT_EQ(wire.find('\n'), std::string::npos) << wire;
    auto decoded = DecodeResponse(wire);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString() << "\n" << wire;
    EXPECT_EQ(EncodeResponse(*decoded), wire);
  }
}

TEST(ApiCodecTest, EveryTruncationOfAValidRequestIsRejected) {
  Request request;
  request.id = 7;
  request.op = Op::kIngest;
  request.ingest.papers.push_back(
      iuad::testing::MakePaper({"a", "b"}, "t\"x", "v", 2020, {1, 2}));
  const std::string wire = EncodeRequest(request);
  for (size_t cut = 0; cut < wire.size(); ++cut) {
    EXPECT_FALSE(DecodeRequest(wire.substr(0, cut)).ok())
        << "accepted prefix of length " << cut;
  }
  EXPECT_TRUE(DecodeRequest(wire).ok());
  EXPECT_FALSE(DecodeRequest(wire + "x").ok());  // trailing garbage
}

TEST(ApiCodecTest, RejectsWrongShapesAndUnknownFields) {
  const char* bad[] = {
      R"(42)",                                           // not an object
      R"({"op":"stats"})",                               // missing id
      R"({"id":1})",                                     // missing op
      R"({"id":"one","op":"stats"})",                    // wrong id type
      R"({"id":1,"op":"mine_bitcoin"})",                 // unknown op
      R"({"id":1,"op":"stats","extra":0})",              // unknown field
      R"({"id":1,"op":"query_authors"})",                // missing name
      R"({"id":1,"op":"query_authors","name":3})",       // wrong name type
      R"({"id":1,"op":"query_publications","vertex":"v"})",
      R"({"id":1,"op":"query_publications","vertex":2.5})",  // non-integer
      R"({"id":1,"op":"ingest","papers":[]})",           // empty batch
      R"({"id":1,"op":"ingest","papers":{}})",           // wrong container
      R"({"id":1,"op":"ingest","papers":[{"title":"t","venue":"v","year":2020,"authors":[]}]})",
      R"({"id":1,"op":"ingest","papers":[{"title":"t","venue":"v","year":2020.5,"authors":["a"]}]})",
      R"({"id":1,"op":"ingest","papers":[{"title":"t","venue":"v","year":2020,"authors":["a"],"truth":[]}]})",
      R"({"id":1,"op":"ingest","papers":[{"title":"t","venue":"v","year":2020,"authors":["a"],"truth":["x"]}]})",
      R"({"id":1,"op":"ingest","papers":[{"venue":"v","year":2020,"authors":["a"]}]})",
      R"({"id":1,"op":"ingest","papers":[{"title":"t","venue":"v","year":2020,"authors":["a"],"doi":"x"}]})",
  };
  for (const char* line : bad) {
    auto r = DecodeRequest(line);
    EXPECT_FALSE(r.ok()) << "accepted: " << line;
  }

  const char* bad_responses[] = {
      R"({"id":1,"op":"stats","ok":"yes"})",                      // ok type
      R"({"id":1,"op":"stats","ok":false})",                      // no error
      R"({"id":1,"op":"stats","ok":false,"error":{"code":"OK","message":""}})",
      R"({"id":1,"op":"flush","ok":true})",                       // no payload
      R"({"id":1,"op":"ingest","ok":true,"assignments":[[{"name":"a"}]]})",
      // Non-finite scores ride as canonical strings; anything else is out.
      R"({"id":1,"op":"ingest","ok":true,"assignments":[[{"name":"a","vertex":1,"new":true,"score":"infinity","candidates":0}]]})",
  };
  for (const char* line : bad_responses) {
    auto r = DecodeResponse(line);
    EXPECT_FALSE(r.ok()) << "accepted: " << line;
  }
}

TEST(ApiCodecTest, RejectsMalformedMetricsPayloads) {
  // The valid shape, as a baseline for the mutations below.
  const char* good =
      R"({"id":1,"op":"metrics","ok":true,"metrics":{"counters":[{"name":"c","value":3}],"gauges":[],"histograms":[{"name":"h","count":3,"sum_ns":10,"max_ns":7,"buckets":[[0,1],[5,2]]}]}})";
  EXPECT_TRUE(DecodeResponse(good).ok());

  const char* bad[] = {
      // count != sum of bucket counts.
      R"({"id":1,"op":"metrics","ok":true,"metrics":{"counters":[],"gauges":[],"histograms":[{"name":"h","count":2,"sum_ns":0,"max_ns":0,"buckets":[[0,1]]}]}})",
      // Non-increasing bucket indices.
      R"({"id":1,"op":"metrics","ok":true,"metrics":{"counters":[],"gauges":[],"histograms":[{"name":"h","count":2,"sum_ns":0,"max_ns":0,"buckets":[[5,1],[5,1]]}]}})",
      // Bucket index out of range.
      R"({"id":1,"op":"metrics","ok":true,"metrics":{"counters":[],"gauges":[],"histograms":[{"name":"h","count":1,"sum_ns":0,"max_ns":0,"buckets":[[64,1]]}]}})",
      // Zero-count bucket (empties must be omitted).
      R"({"id":1,"op":"metrics","ok":true,"metrics":{"counters":[],"gauges":[],"histograms":[{"name":"h","count":0,"sum_ns":0,"max_ns":0,"buckets":[[0,0]]}]}})",
      // Bucket entry is not an [index, count] pair.
      R"({"id":1,"op":"metrics","ok":true,"metrics":{"counters":[],"gauges":[],"histograms":[{"name":"h","count":1,"sum_ns":0,"max_ns":0,"buckets":[[0,1,2]]}]}})",
      // Missing / unknown fields in samples and sections.
      R"({"id":1,"op":"metrics","ok":true,"metrics":{"counters":[{"name":"c"}],"gauges":[],"histograms":[]}})",
      R"({"id":1,"op":"metrics","ok":true,"metrics":{"counters":[{"name":"c","value":1,"unit":"s"}],"gauges":[],"histograms":[]}})",
      R"({"id":1,"op":"metrics","ok":true,"metrics":{"counters":[],"gauges":[]}})",
      R"({"id":1,"op":"metrics","ok":true,"metrics":{"counters":[],"gauges":[],"histograms":[],"extra":0}})",
  };
  for (const char* line : bad) {
    auto r = DecodeResponse(line);
    EXPECT_FALSE(r.ok()) << "accepted: " << line;
  }
}

TEST(ApiCodecTest, OversizedPayloadIsRejectedByLimits) {
  Request request;
  request.id = 1;
  request.op = Op::kQueryAuthors;
  request.query_authors.name = std::string(4096, 'x');
  const std::string wire = EncodeRequest(request);
  EXPECT_TRUE(DecodeRequest(wire).ok());
  WireLimits tight;
  tight.max_bytes = 1024;
  auto r = DecodeRequest(wire, tight);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

// ---- Dispatcher / Frontend equivalence --------------------------------------

core::IuadConfig FastConfig(int num_shards) {
  core::IuadConfig cfg;
  cfg.word2vec.dim = 16;
  cfg.word2vec.epochs = 2;
  cfg.max_split_vertices = 50;
  cfg.num_shards = num_shards;
  return cfg;
}

struct Fixture {
  data::PaperDatabase history;
  std::vector<data::Paper> stream;
  core::DisambiguationResult result;
};

Fixture MakeFixture(uint64_t seed, int holdout, const core::IuadConfig& cfg) {
  Fixture f;
  auto corpus = iuad::testing::SmallCorpus(seed);
  auto [history, stream] = corpus.db.HoldOutLatest(holdout);
  f.history = std::move(history);
  f.stream = std::move(stream);
  auto result = core::IuadPipeline(cfg).Run(f.history);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  f.result = std::move(*result);
  return f;
}

std::unique_ptr<serve::Frontend> MakeFrontend(Fixture* f,
                                              const core::IuadConfig& cfg) {
  if (cfg.num_shards > 1) {
    return std::make_unique<shard::ShardRouter>(&f->history, &f->result, cfg);
  }
  return std::make_unique<serve::IngestService>(&f->history, &f->result, cfg);
}

/// Order-sensitive digest including the raw score text (%.17g, the wire
/// encoding), so "byte-identical" includes every score bit.
std::string DigestOf(const std::vector<core::IncrementalAssignment>& as) {
  std::string d;
  char score[64];
  for (const auto& a : as) {
    std::snprintf(score, sizeof(score), "%.17g", a.best_score);
    d += a.name + ":" + std::to_string(a.vertex) + (a.created_new ? "*" : "") +
         "@" + score + "#" + std::to_string(a.num_candidates) + ";";
  }
  return d;
}

/// Ground truth: the same stream through Frontend::Submit, one future per
/// paper, in order.
std::vector<std::string> DirectTraces(const core::IuadConfig& cfg,
                                      uint64_t seed, int holdout) {
  Fixture f = MakeFixture(seed, holdout, cfg);
  auto frontend = MakeFrontend(&f, cfg);
  std::vector<std::future<serve::Frontend::Assignments>> futures;
  for (const auto& paper : f.stream) futures.push_back(frontend->Submit(paper));
  frontend->Stop();
  std::vector<std::string> traces;
  for (auto& fut : futures) {
    auto r = fut.get();
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    traces.push_back(r.ok() ? DigestOf(*r) : "FAILED");
  }
  return traces;
}

/// The same stream as a scripted NDJSON session through the dispatcher
/// (the stdio protocol), batching `batch` papers per ingest request.
std::vector<std::string> SessionTraces(const core::IuadConfig& cfg,
                                       uint64_t seed, int holdout,
                                       size_t batch) {
  Fixture f = MakeFixture(seed, holdout, cfg);
  auto frontend = MakeFrontend(&f, cfg);

  std::ostringstream script;
  int64_t id = 0;
  for (size_t i = 0; i < f.stream.size(); i += batch) {
    Request request;
    request.id = id++;
    request.op = Op::kIngest;
    for (size_t j = i; j < f.stream.size() && j < i + batch; ++j) {
      request.ingest.papers.push_back(f.stream[j]);
    }
    script << EncodeRequest(request) << "\n";
  }
  Request flush;
  flush.id = id++;
  flush.op = Op::kFlush;
  script << EncodeRequest(flush) << "\n";

  Dispatcher dispatcher(frontend.get(),
                        Dispatcher::Options{static_cast<int>(batch), {}});
  std::istringstream in(script.str());
  std::ostringstream out;
  dispatcher.ServeStream(in, out);
  frontend->Stop();

  std::vector<std::string> traces;
  std::istringstream lines(out.str());
  std::string line;
  while (std::getline(lines, line)) {
    auto response = DecodeResponse(line);
    EXPECT_TRUE(response.ok()) << response.status().ToString() << "\n" << line;
    if (!response.ok()) continue;
    EXPECT_TRUE(response->status.ok()) << response->status.ToString();
    if (response->op != Op::kIngest) continue;
    for (const auto& per_paper : response->assignments) {
      traces.push_back(DigestOf(per_paper));
    }
  }
  return traces;
}

TEST(ApiEquivalenceTest, SessionMatchesDirectSubmitUnsharded) {
  const core::IuadConfig cfg = FastConfig(1);
  const auto direct = DirectTraces(cfg, 61, 40);
  ASSERT_EQ(direct.size(), 40u);
  EXPECT_EQ(SessionTraces(cfg, 61, 40, 1), direct);   // one paper per request
  EXPECT_EQ(SessionTraces(cfg, 61, 40, 7), direct);   // batched SubmitBatch
}

TEST(ApiEquivalenceTest, SessionMatchesDirectSubmitAtFourShards) {
  const core::IuadConfig cfg = FastConfig(4);
  const auto direct = DirectTraces(cfg, 62, 40);
  ASSERT_EQ(direct.size(), 40u);
  EXPECT_EQ(SessionTraces(cfg, 62, 40, 7), direct);
}

TEST(ApiDispatcherTest, RejectsOversizedBatchAndBadVertex) {
  core::IuadConfig cfg = FastConfig(1);
  cfg.api_max_batch = 2;
  Fixture f = MakeFixture(63, 10, cfg);
  auto frontend = MakeFrontend(&f, cfg);
  Dispatcher dispatcher(frontend.get(),
                        Dispatcher::Options{cfg.api_max_batch, {}});

  Request big;
  big.id = 1;
  big.op = Op::kIngest;
  big.ingest.papers = {f.stream[0], f.stream[1], f.stream[2]};
  Response r = dispatcher.Execute(big);
  EXPECT_EQ(r.status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(r.id, 1);

  Request bad_vertex;
  bad_vertex.id = 2;
  bad_vertex.op = Op::kQueryPublications;
  bad_vertex.query_publications.vertex = -5;
  r = dispatcher.Execute(bad_vertex);
  EXPECT_EQ(r.status.code(), StatusCode::kInvalidArgument);

  // Undecodable line: one error response, id -1, still a valid wire line.
  const std::string line = dispatcher.HandleLine("{\"id\":");
  auto decoded = DecodeResponse(line);
  ASSERT_TRUE(decoded.ok()) << line;
  EXPECT_EQ(decoded->id, -1);
  EXPECT_EQ(decoded->status.code(), StatusCode::kInvalidArgument);
  frontend->Stop();
}

// ---- TCP server -------------------------------------------------------------

/// Minimal blocking NDJSON client over one socket.
class Client {
 public:
  explicit Client(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    connected_ = ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                           sizeof(addr)) == 0;
  }
  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }
  bool connected() const { return connected_; }

  /// Sends one request line, reads one response line.
  iuad::Result<Response> Call(const Request& request) {
    const std::string line = EncodeRequest(request) + "\n";
    size_t off = 0;
    while (off < line.size()) {
      const ssize_t n = ::send(fd_, line.data() + off, line.size() - off, 0);
      if (n <= 0) return iuad::Status::IoError("send failed");
      off += static_cast<size_t>(n);
    }
    std::string response_line;
    char c = 0;
    while (true) {
      const ssize_t n = ::recv(fd_, &c, 1, 0);
      if (n <= 0) return iuad::Status::IoError("recv failed");
      if (c == '\n') break;
      response_line += c;
    }
    return DecodeResponse(response_line);
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
};

TEST(ApiServerTest, TcpSessionServesIngestQueryAndStats) {
  core::IuadConfig cfg = FastConfig(1);
  Fixture f = MakeFixture(64, 10, cfg);
  auto frontend = MakeFrontend(&f, cfg);
  ServerOptions options;
  options.port = 0;  // ephemeral
  options.num_workers = 2;
  options.max_batch = 4;
  Server server(frontend.get(), options);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_GT(server.port(), 0);

  Client client(server.port());
  ASSERT_TRUE(client.connected());

  Request stats;
  stats.id = 1;
  stats.op = Op::kStats;
  auto r = client.Call(stats);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->status.ok());
  EXPECT_EQ(r->stats.papers_applied, 0);
  EXPECT_EQ(r->stats.num_shards, 1);

  Request ingest;
  ingest.id = 2;
  ingest.op = Op::kIngest;
  ingest.ingest.papers = {f.stream[0], f.stream[1], f.stream[2]};
  r = client.Call(ingest);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_TRUE(r->status.ok()) << r->status.ToString();
  EXPECT_EQ(r->assignments.size(), 3u);

  Request flush;
  flush.id = 3;
  flush.op = Op::kFlush;
  r = client.Call(flush);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->status.ok());
  EXPECT_EQ(r->applied, 3);

  // A name guaranteed alive since the fit: the first history byline.
  Request authors;
  authors.id = 4;
  authors.op = Op::kQueryAuthors;
  authors.query_authors.name = f.history.paper(0).author_names[0];
  r = client.Call(authors);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r->status.ok());
  ASSERT_FALSE(r->authors.empty());

  Request pubs;
  pubs.id = 5;
  pubs.op = Op::kQueryPublications;
  pubs.query_publications.vertex = r->authors[0].vertex;
  auto pr = client.Call(pubs);
  ASSERT_TRUE(pr.ok());
  ASSERT_TRUE(pr->status.ok());
  EXPECT_GE(static_cast<int>(pr->paper_ids.size()), r->authors[0].num_papers);

  // Batch above api_max_batch: protocol-level backpressure.
  Request big;
  big.id = 6;
  big.op = Op::kIngest;
  big.ingest.papers = {f.stream[3], f.stream[4], f.stream[5], f.stream[6],
                       f.stream[7]};
  r = client.Call(big);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->status.code(), StatusCode::kResourceExhausted);

  // GetMetrics over the wire: the registry counters must agree with what
  // this session actually did, and the commit-latency histogram must have
  // one recording per applied paper.
  Request metrics;
  metrics.id = 7;
  metrics.op = Op::kMetrics;
  r = client.Call(metrics);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_TRUE(r->status.ok()) << r->status.ToString();
  auto counter = [&](const std::string& name) -> int64_t {
    for (const auto& c : r->metrics.counters) {
      if (c.name == name) return c.value;
    }
    ADD_FAILURE() << "counter " << name << " missing from GetMetrics";
    return -1;
  };
  EXPECT_EQ(counter("papers_applied"), 3);
  EXPECT_EQ(counter("papers_failed"), 0);
  EXPECT_GE(counter("requests"), 6);
  EXPECT_GE(counter("bytes_in"), 1);
  EXPECT_GE(counter("bytes_out"), 1);
  EXPECT_EQ(counter("connections_accepted"), 1);
  bool found_commit_latency = false;
  for (const auto& h : r->metrics.histograms) {
    if (h.name != "commit_latency_us") continue;
    found_commit_latency = true;
    EXPECT_EQ(h.count, 3);
    EXPECT_GE(h.PercentileUs(99), h.PercentileUs(50));
  }
  EXPECT_TRUE(found_commit_latency);

  server.Shutdown();
  // Graceful drain: everything the session ingested is applied.
  EXPECT_EQ(frontend->Stats().papers_applied, 3);
  frontend->Stop();
}

TEST(ApiServerTest, ShutdownWithIdleConnectionDoesNotHang) {
  core::IuadConfig cfg = FastConfig(1);
  Fixture f = MakeFixture(65, 5, cfg);
  auto frontend = MakeFrontend(&f, cfg);
  ServerOptions options;
  options.num_workers = 1;
  Server server(frontend.get(), options);
  ASSERT_TRUE(server.Start().ok());
  Client idle(server.port());
  ASSERT_TRUE(idle.connected());
  Request stats;
  stats.id = 1;
  stats.op = Op::kStats;
  ASSERT_TRUE(idle.Call(stats).ok());
  // The worker is now parked in recv on this connection; Shutdown must
  // still return (SHUT_RDWR wakes it).
  server.Shutdown();
  frontend->Stop();
}

}  // namespace
}  // namespace iuad::api
