/// wal::Log + wal::ReplayTail: the durability contract (DESIGN.md §9).
/// The acceptance property is crash-safety: kill the serving process at an
/// arbitrary committed sequence (and optionally tear the final record at an
/// arbitrary byte offset), recover from checkpoint + log replay, and the
/// resulting assignments — score bits included — are byte-identical to an
/// uninterrupted sequential run. Around that property: recovery edge cases
/// (fresh dir, torn tail, corrupt mid-log record, wrong corpus, compaction
/// across a segment boundary) pin the torn-write rule of wal.h.

#include <gtest/gtest.h>

#include <csignal>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <dirent.h>
#include <fstream>
#include <future>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "core/incremental.h"
#include "core/pipeline.h"
#include "data/paper_database.h"
#include "io/snapshot.h"
#include "serve/ingest_service.h"
#include "shard/shard_router.h"
#include "testing_utils.h"
#include "util/build_info.h"
#include "wal/wal.h"

namespace iuad::wal {
namespace {

core::IuadConfig FastConfig() {
  core::IuadConfig cfg;
  cfg.word2vec.dim = 16;
  cfg.word2vec.epochs = 2;
  cfg.max_split_vertices = 50;
  return cfg;
}

struct Fixture {
  data::PaperDatabase history;
  std::vector<data::Paper> stream;
  core::DisambiguationResult result;
};

Fixture MakeFixture(uint64_t seed, int holdout, const core::IuadConfig& cfg) {
  Fixture f;
  auto corpus = iuad::testing::SmallCorpus(seed);
  auto [history, stream] = corpus.db.HoldOutLatest(holdout);
  f.history = std::move(history);
  f.stream = std::move(stream);
  auto result = core::IuadPipeline(cfg).Run(f.history);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  f.result = std::move(*result);
  return f;
}

/// Order-sensitive digest including the score bits: "byte-identical" means
/// bitwise-equal doubles, not just the same argmax (same as shard_test).
std::string TraceOf(const std::vector<core::IncrementalAssignment>& as) {
  std::string t;
  for (const auto& a : as) {
    double score = a.best_score;
    uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(score), "double is 64-bit");
    std::memcpy(&bits, &score, sizeof(bits));
    t += a.name + ":" + std::to_string(a.vertex) +
         (a.created_new ? "*" : "") + "#" + std::to_string(bits) + "/" +
         std::to_string(a.num_candidates) + ";";
  }
  return t;
}

/// Sequential ground truth: one AddPaper per stream paper, in order.
std::vector<std::string> SequentialTraces(const core::IuadConfig& cfg,
                                          uint64_t seed, int holdout) {
  Fixture f = MakeFixture(seed, holdout, cfg);
  core::IncrementalDisambiguator inc(&f.history, &f.result, cfg);
  std::vector<std::string> traces;
  for (const auto& paper : f.stream) {
    auto r = inc.AddPaper(paper);
    EXPECT_TRUE(r.ok());
    traces.push_back(TraceOf(*r));
  }
  return traces;
}

/// A fresh per-test WAL directory under the test temp dir. Log::Open
/// creates it; a unique name per test keeps runs independent.
std::string FreshWalDir(const std::string& tag) {
  std::string dir = ::testing::TempDir() + "wal_test_" + tag + "_" +
                    std::to_string(::getpid());
  // Clear leftovers from a previous crashed run of the same pid-recycled
  // name: remove every regular file, then the directory itself.
  if (DIR* d = ::opendir(dir.c_str())) {
    while (struct dirent* e = ::readdir(d)) {
      std::string name = e->d_name;
      if (name == "." || name == "..") continue;
      ::unlink((dir + "/" + name).c_str());
    }
    ::closedir(d);
    ::rmdir(dir.c_str());
  }
  return dir;
}

std::vector<std::string> SegmentFiles(const std::string& dir) {
  std::vector<std::string> out;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return out;
  while (struct dirent* e = ::readdir(d)) {
    std::string name = e->d_name;
    if (name.rfind("wal-", 0) == 0) out.push_back(name);
  }
  ::closedir(d);
  std::sort(out.begin(), out.end());
  return out;
}

int64_t FileSize(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0 ? static_cast<int64_t>(st.st_size)
                                        : -1;
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteAll(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

constexpr size_t kSegmentHeaderSize = 24;  // magic + base fp + start seq
constexpr size_t kRecordHeaderSize = 12;   // payload len u32 + crc u64

/// Byte offset of record `index` within a segment file's raw bytes.
size_t RecordOffset(const std::string& raw, int index) {
  size_t pos = kSegmentHeaderSize;
  for (int i = 0; i < index; ++i) {
    uint32_t len = 0;
    std::memcpy(&len, raw.data() + pos, sizeof(len));
    pos += kRecordHeaderSize + len;
  }
  return pos;
}

TEST(WalLogTest, EmptyDirRoundTripsAppendedRecords) {
  const std::string dir = FreshWalDir("roundtrip");
  Options opts;
  opts.fsync_every_n = 1;
  {
    auto log = Log::Open(dir, /*base_fingerprint=*/42, opts);
    ASSERT_TRUE(log.ok()) << log.status().ToString();
    EXPECT_FALSE((*log)->has_checkpoint());
    EXPECT_EQ((*log)->snapshot_seq(), 0u);
    EXPECT_EQ((*log)->durable_next(), 0u);
    EXPECT_TRUE((*log)->tail().empty());
    (*log)->Append(0, iuad::testing::MakePaper({"a", "b"}, "alpha", "V1",
                                               2019, {3, 7}));
    (*log)->Append(1, iuad::testing::MakePaper({"c"}, "beta", "V2", 2020));
    (*log)->Append(2, iuad::testing::MakePaper({"a", "c"}, "gamma"));
    ASSERT_TRUE((*log)->Flush().ok());
    EXPECT_EQ((*log)->durable_next(), 3u);
  }
  auto log = Log::Open(dir, 42, opts);
  ASSERT_TRUE(log.ok()) << log.status().ToString();
  EXPECT_FALSE((*log)->has_checkpoint());
  EXPECT_EQ((*log)->durable_next(), 3u);
  ASSERT_EQ((*log)->tail().size(), 3u);
  const TailRecord& r0 = (*log)->tail()[0];
  EXPECT_EQ(r0.seq, 0u);
  EXPECT_EQ(r0.paper.title, "alpha");
  EXPECT_EQ(r0.paper.venue, "V1");
  EXPECT_EQ(r0.paper.year, 2019);
  EXPECT_EQ(r0.paper.author_names, (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(r0.paper.true_author_ids, (std::vector<data::AuthorId>{3, 7}));
  EXPECT_EQ((*log)->tail()[1].seq, 1u);
  EXPECT_EQ((*log)->tail()[1].paper.title, "beta");
  EXPECT_EQ((*log)->tail()[2].seq, 2u);
  EXPECT_EQ((*log)->tail()[2].paper.author_names,
            (std::vector<std::string>{"a", "c"}));
}

TEST(WalLogTest, AppendIsIdempotentBelowDurableNext) {
  const std::string dir = FreshWalDir("idempotent");
  Options opts;
  opts.fsync_every_n = 1;
  {
    auto log = Log::Open(dir, 42, opts);
    ASSERT_TRUE(log.ok());
    (*log)->Append(0, iuad::testing::MakePaper({"a"}, "one"));
    (*log)->Append(1, iuad::testing::MakePaper({"b"}, "two"));
    ASSERT_TRUE((*log)->Flush().ok());
  }
  // Reopen and re-append the already-durable prefix — the replay-through-
  // the-normal-path pattern. Nothing may be double-logged.
  auto log = Log::Open(dir, 42, opts);
  ASSERT_TRUE(log.ok());
  (*log)->Append(0, iuad::testing::MakePaper({"a"}, "one"));
  (*log)->Append(1, iuad::testing::MakePaper({"b"}, "two"));
  (*log)->Append(2, iuad::testing::MakePaper({"c"}, "three"));
  ASSERT_TRUE((*log)->Flush().ok());
  EXPECT_EQ((*log)->durable_next(), 3u);
  EXPECT_TRUE((*log)->status().ok());
  log->reset();
  auto reread = Log::Open(dir, 42, opts);
  ASSERT_TRUE(reread.ok()) << reread.status().ToString();
  ASSERT_EQ((*reread)->tail().size(), 3u);
  EXPECT_EQ((*reread)->tail()[2].paper.title, "three");
}

TEST(WalLogTest, TornFinalRecordIsSilentlyTruncated) {
  const std::string dir = FreshWalDir("torn");
  Options opts;
  opts.fsync_every_n = 1;
  {
    auto log = Log::Open(dir, 42, opts);
    ASSERT_TRUE(log.ok());
    (*log)->Append(0, iuad::testing::MakePaper({"a"}, "one"));
    (*log)->Append(1, iuad::testing::MakePaper({"b"}, "two"));
    ASSERT_TRUE((*log)->Flush().ok());
  }
  auto segments = SegmentFiles(dir);
  ASSERT_EQ(segments.size(), 1u);
  const std::string seg = dir + "/" + segments[0];
  const int64_t clean_size = FileSize(seg);
  // A torn write: a complete-looking length header promising 100 payload
  // bytes, followed by only 4 — the expected artifact of a mid-record crash.
  {
    std::ofstream out(seg, std::ios::binary | std::ios::app);
    uint32_t len = 100;
    out.write(reinterpret_cast<const char*>(&len), sizeof(len));
    out.write("torn", 4);
  }
  ASSERT_GT(FileSize(seg), clean_size);
  auto log = Log::Open(dir, 42, opts);
  ASSERT_TRUE(log.ok()) << log.status().ToString();
  EXPECT_EQ((*log)->durable_next(), 2u);
  ASSERT_EQ((*log)->tail().size(), 2u);
  EXPECT_EQ((*log)->tail()[1].paper.title, "two");
  EXPECT_EQ(FileSize(seg), clean_size);  // the torn bytes are gone
}

TEST(WalLogTest, CorruptMidLogRecordIsRejectedLoudlyWithSequence) {
  const std::string dir = FreshWalDir("corrupt");
  Options opts;
  opts.fsync_every_n = 1;
  {
    auto log = Log::Open(dir, 42, opts);
    ASSERT_TRUE(log.ok());
    (*log)->Append(0, iuad::testing::MakePaper({"a"}, "one"));
    (*log)->Append(1, iuad::testing::MakePaper({"b"}, "two"));
    (*log)->Append(2, iuad::testing::MakePaper({"c"}, "three"));
    ASSERT_TRUE((*log)->Flush().ok());
  }
  auto segments = SegmentFiles(dir);
  ASSERT_EQ(segments.size(), 1u);
  const std::string seg = dir + "/" + segments[0];
  std::string raw = ReadAll(seg);
  // Flip one payload byte of the MIDDLE record (sequence 1). The record is
  // complete, so this is not a torn write: it must be rejected loudly,
  // pinpointed by sequence, never silently truncated.
  const size_t off = RecordOffset(raw, 1) + kRecordHeaderSize + 9;
  ASSERT_LT(off, raw.size());
  raw[off] = static_cast<char>(raw[off] ^ 0x5A);
  WriteAll(seg, raw);
  auto log = Log::Open(dir, 42, opts);
  ASSERT_FALSE(log.ok());
  EXPECT_EQ(log.status().code(), iuad::StatusCode::kIoError);
  EXPECT_NE(log.status().ToString().find("checksum"), std::string::npos)
      << log.status().ToString();
  EXPECT_NE(log.status().ToString().find("1"), std::string::npos)
      << log.status().ToString();
}

TEST(WalLogTest, MismatchedCorpusFingerprintIsRejected) {
  const std::string dir = FreshWalDir("fingerprint");
  Options opts;
  {
    auto log = Log::Open(dir, 42, opts);
    ASSERT_TRUE(log.ok());
    (*log)->Append(0, iuad::testing::MakePaper({"a"}, "one"));
    ASSERT_TRUE((*log)->Flush().ok());
  }
  auto wrong = Log::Open(dir, 43, opts);
  ASSERT_FALSE(wrong.ok());
  EXPECT_EQ(wrong.status().code(), iuad::StatusCode::kFailedPrecondition);
  EXPECT_NE(wrong.status().ToString().find("corpus"), std::string::npos)
      << wrong.status().ToString();
  // The right fingerprint still opens: the rejection did not damage the dir.
  auto right = Log::Open(dir, 42, opts);
  ASSERT_TRUE(right.ok()) << right.status().ToString();
  EXPECT_EQ((*right)->durable_next(), 1u);
}

/// Drives a WAL-backed IngestService through checkpoints and segment
/// rotations, then recovers from the checkpoint + tail and verifies the
/// recovered read state equals an uninterrupted run's.
TEST(WalCheckpointTest, CompactionRetiresSegmentsAndReplayCrossesBoundary) {
  core::IuadConfig cfg = FastConfig();
  cfg.incremental_refresh_interval = 5;
  cfg.wal_checkpoint_every_n = 5;
  const uint64_t kSeed = 57;
  const int kHoldout = 24;
  const std::string dir = FreshWalDir("compaction");
  Options opts;
  opts.fsync_every_n = 1;
  opts.segment_records = 3;  // force rotations between checkpoints

  Fixture f = MakeFixture(kSeed, kHoldout, cfg);
  const uint64_t fp = f.history.Fingerprint();
  {
    auto log = Log::Open(dir, fp, opts);
    ASSERT_TRUE(log.ok()) << log.status().ToString();
    serve::IngestService service(&f.history, &f.result, cfg, log->get());
    std::vector<std::future<serve::IngestService::Assignments>> futures;
    for (size_t i = 0; i < f.stream.size(); ++i) {
      futures.push_back(service.SubmitAt(i, f.stream[i]));
    }
    for (auto& fut : futures) ASSERT_TRUE(fut.get().ok());
    service.Stop();
    ASSERT_TRUE((*log)->status().ok()) << (*log)->status().ToString();
    // Checkpoints land at refresh boundaries 5, 10, 15, 20; the last one
    // covers [0, 20).
    EXPECT_EQ((*log)->last_checkpoint_seq(), 20u);
    const auto stats = service.Stats();
    EXPECT_EQ(stats.wal_appended, 24);
    EXPECT_EQ(stats.wal_last_checkpoint_seq, 20);
    EXPECT_GE(stats.wal_last_checkpoint_age_s, 0.0);
    EXPECT_GT(stats.wal_fsyncs, 0);
    EXPECT_GT(stats.wal_bytes, 0);
  }

  // Everything below sequence 20 must have been retired from disk: the
  // survivors are the sealed segment [20, 23) and the active one at 23 —
  // the replay tail crosses that segment boundary.
  const auto segments = SegmentFiles(dir);
  ASSERT_EQ(segments.size(), 2u) << segments.size() << " segments left";

  auto log = Log::Open(dir, fp, opts);
  ASSERT_TRUE(log.ok()) << log.status().ToString();
  ASSERT_TRUE((*log)->has_checkpoint());
  EXPECT_EQ((*log)->snapshot_seq(), 20u);
  EXPECT_EQ((*log)->durable_next(), 24u);
  ASSERT_EQ((*log)->tail().size(), 4u);
  EXPECT_EQ((*log)->tail().front().seq, 20u);
  EXPECT_EQ((*log)->tail().back().seq, 23u);

  // Recover: checkpoint corpus + snapshot, then replay the 4-record tail.
  auto ckpt_db = data::PaperDatabase::LoadTsv((*log)->checkpoint_corpus_path());
  ASSERT_TRUE(ckpt_db.ok()) << ckpt_db.status().ToString();
  auto snap = io::LoadSnapshot((*log)->checkpoint_snapshot_path(), *ckpt_db);
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();
  serve::IngestService recovered(&*ckpt_db, &snap->result, cfg, log->get());
  auto replayed = ReplayTail(**log, &recovered);
  ASSERT_TRUE(replayed.ok()) << replayed.status().ToString();
  EXPECT_EQ(*replayed, 4u);
  const auto rstats = recovered.Stats();
  EXPECT_EQ(rstats.recovery_replayed, 4);
  EXPECT_EQ(rstats.papers_applied, 4);

  // The recovered read state must equal an uninterrupted run's, vertex ids
  // and paper attributions included.
  Fixture g = MakeFixture(kSeed, kHoldout, cfg);
  serve::IngestService uninterrupted(&g.history, &g.result, cfg);
  for (size_t i = 0; i < g.stream.size(); ++i) {
    uninterrupted.SubmitAt(i, g.stream[i]);
  }
  uninterrupted.Drain();
  const auto want = uninterrupted.Stats();
  EXPECT_EQ(rstats.num_alive_vertices, want.num_alive_vertices);
  EXPECT_EQ(rstats.num_edges, want.num_edges);
  std::set<std::string> names;
  for (const auto& p : g.stream) {
    for (const auto& n : p.author_names) names.insert(n);
  }
  for (const auto& name : names) {
    const auto got_authors = recovered.AuthorsByName(name);
    const auto want_authors = uninterrupted.AuthorsByName(name);
    ASSERT_EQ(got_authors.size(), want_authors.size()) << name;
    for (size_t i = 0; i < got_authors.size(); ++i) {
      EXPECT_EQ(got_authors[i].vertex, want_authors[i].vertex) << name;
      EXPECT_EQ(got_authors[i].num_papers, want_authors[i].num_papers)
          << name;
      EXPECT_EQ(recovered.PublicationsOf(got_authors[i].vertex),
                uninterrupted.PublicationsOf(want_authors[i].vertex))
          << name;
    }
  }
  recovered.Stop();
  uninterrupted.Stop();
}

/// The crash-safety property. For each (shards, depth) combination: fork a
/// child that serves through a WAL-backed ShardRouter, commits a
/// pseudo-random prefix of the stream, and dies by SIGKILL without any
/// shutdown; the parent then recovers from the log (for odd combinations,
/// after additionally tearing the final record at a random byte offset),
/// replays, submits the remainder, and requires every post-recovery
/// assignment byte-identical — score bits included — to the sequential run.
TEST(WalCrashRecoveryTest, RecoveredAssignmentsMatchSequential) {
  if (std::string(util::BuildSanitizer()) != "none") {
    GTEST_SKIP() << "fork-based crash test is incompatible with sanitizers";
  }
  const core::IuadConfig base = FastConfig();
  const uint64_t kSeed = 71;
  const int kHoldout = 40;
  const auto sequential = SequentialTraces(base, kSeed, kHoldout);
  ASSERT_EQ(sequential.size(), static_cast<size_t>(kHoldout));

  std::mt19937_64 rng(0xC0FFEE);
  const struct {
    int shards;
    int depth;
  } kCombos[] = {{1, 1}, {1, 8}, {4, 1}, {4, 8}};
  int combo_index = 0;
  for (const auto& combo : kCombos) {
    SCOPED_TRACE("shards=" + std::to_string(combo.shards) +
                 " depth=" + std::to_string(combo.depth));
    core::IuadConfig cfg = base;
    cfg.num_shards = combo.shards;
    cfg.pipeline_depth = combo.depth;
    const int crash_k =
        5 + static_cast<int>(rng() % static_cast<uint64_t>(kHoldout - 10));
    const bool tear_tail = (combo_index++ % 2) == 1;
    const std::string dir =
        FreshWalDir("crash_s" + std::to_string(combo.shards) + "_d" +
                    std::to_string(combo.depth));
    Options opts;
    opts.fsync_every_n = 1;  // every committed prefix record is durable

    // The fixture is built BEFORE the fork: the child mutates its
    // copy-on-write pages and dies; the parent's copy stays pristine and
    // becomes the recovery baseline. DisambiguationResult is move-only, so
    // this is also what keeps the test to one pipeline fit per combination.
    Fixture f = MakeFixture(kSeed, kHoldout, cfg);
    const uint64_t fp = f.history.Fingerprint();

    const pid_t child = ::fork();
    ASSERT_GE(child, 0);
    if (child == 0) {
      // ---- child: serve, commit crash_k papers durably, die hard. -------
      auto log = Log::Open(dir, fp, opts);
      if (!log.ok()) ::_exit(7);
      shard::ShardRouter router(&f.history, &f.result, cfg, log->get());
      std::vector<std::future<shard::ShardRouter::Assignments>> futures;
      for (int i = 0; i < crash_k; ++i) {
        futures.push_back(
            router.SubmitAt(static_cast<uint64_t>(i), f.stream[i]));
      }
      for (auto& fut : futures) {
        if (!fut.get().ok()) ::_exit(8);
      }
      router.Drain();  // forces the WAL flush: all crash_k records durable
      std::raise(SIGKILL);
      ::_exit(9);  // unreachable
    }

    // ---- parent: reap the crash, optionally tear the tail, recover. -----
    int status = 0;
    ASSERT_EQ(::waitpid(child, &status, 0), child);
    ASSERT_TRUE(WIFSIGNALED(status)) << "child exited with " << status;
    ASSERT_EQ(WTERMSIG(status), SIGKILL);

    int expect_durable = crash_k;
    if (tear_tail) {
      // Simulate an fsync that never completed: chop a random 1..12 bytes
      // off the active segment, leaving its final record incomplete.
      const auto segments = SegmentFiles(dir);
      ASSERT_EQ(segments.size(), 1u);
      const std::string seg = dir + "/" + segments[0];
      const int64_t size = FileSize(seg);
      const int64_t cut = 1 + static_cast<int64_t>(rng() % 12);
      ASSERT_EQ(::truncate(seg.c_str(), size - cut), 0);
      expect_durable = crash_k - 1;
    }

    auto log = Log::Open(dir, fp, opts);
    ASSERT_TRUE(log.ok()) << log.status().ToString();
    ASSERT_EQ((*log)->durable_next(),
              static_cast<uint64_t>(expect_durable));
    shard::ShardRouter recovered(&f.history, &f.result, cfg, log->get());
    auto replayed = ReplayTail(**log, &recovered);
    ASSERT_TRUE(replayed.ok()) << replayed.status().ToString();
    ASSERT_EQ(*replayed, static_cast<uint64_t>(expect_durable));

    std::vector<std::future<shard::ShardRouter::Assignments>> futures;
    for (int i = expect_durable; i < kHoldout; ++i) {
      futures.push_back(
          recovered.SubmitAt(static_cast<uint64_t>(i), f.stream[i]));
    }
    for (size_t j = 0; j < futures.size(); ++j) {
      auto r = futures[j].get();
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      EXPECT_EQ(TraceOf(*r),
                sequential[static_cast<size_t>(expect_durable) + j])
          << "post-recovery divergence at sequence "
          << (expect_durable + static_cast<int>(j));
    }
    recovered.Drain();
    const auto stats = recovered.Stats();
    EXPECT_EQ(stats.recovery_replayed, expect_durable);
    // Replay never re-appends the durable prefix; only the remainder hits
    // the log in this session.
    EXPECT_EQ(stats.wal_appended, kHoldout - expect_durable);
    recovered.Stop();
    ASSERT_TRUE((*log)->status().ok()) << (*log)->status().ToString();
  }
}

}  // namespace
}  // namespace iuad::wal
