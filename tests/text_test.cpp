#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>

#include "text/embedding.h"
#include "text/tokenizer.h"
#include "text/vocabulary.h"
#include "text/word2vec.h"
#include "util/rng.h"

namespace iuad::text {
namespace {

// --------------------------- Tokenizer --------------------------------------

TEST(TokenizerTest, LowercasesAndStripsPunctuation) {
  auto toks = Tokenize("Graph-Based Name: Disambiguation!");
  EXPECT_EQ(toks, (std::vector<std::string>{"graph", "based", "name",
                                            "disambiguation"}));
}

TEST(TokenizerTest, DropsShortTokens) {
  auto toks = Tokenize("a of x12 networks", /*min_len=*/3);
  EXPECT_EQ(toks, (std::vector<std::string>{"networks"}));
}

TEST(TokenizerTest, EmptyInput) { EXPECT_TRUE(Tokenize("").empty()); }

TEST(TokenizerTest, DigitsSplitTokens) {
  auto toks = Tokenize("word2vec");
  EXPECT_EQ(toks, (std::vector<std::string>{"word", "vec"}));
}

TEST(StopWordsTest, CommonWordsAreStopWords) {
  EXPECT_TRUE(IsStopWord("the"));
  EXPECT_TRUE(IsStopWord("using"));
  EXPECT_TRUE(IsStopWord("based"));
  EXPECT_FALSE(IsStopWord("collaboration"));
}

TEST(KeywordsTest, ExtractKeywordsFiltersStopWords) {
  auto kws = ExtractKeywords("On the Disambiguation of Authors using Graphs");
  EXPECT_EQ(kws, (std::vector<std::string>{"disambiguation", "authors",
                                           "graphs"}));
}

// --------------------------- Vocabulary -------------------------------------

TEST(VocabularyTest, AssignsDenseIdsInFirstSeenOrder) {
  Vocabulary v;
  EXPECT_EQ(v.Add("alpha"), 0);
  EXPECT_EQ(v.Add("beta"), 1);
  EXPECT_EQ(v.Add("alpha"), 0);
  EXPECT_EQ(v.size(), 2);
  EXPECT_EQ(v.WordOf(1), "beta");
}

TEST(VocabularyTest, CountsAccumulate) {
  Vocabulary v;
  v.Add("x");
  v.AddCount("x", 4);
  v.Add("y");
  EXPECT_EQ(v.CountOf("x"), 5);
  EXPECT_EQ(v.CountOf("y"), 1);
  EXPECT_EQ(v.CountOf("zzz"), 0);
  EXPECT_EQ(v.total_count(), 6);
}

TEST(VocabularyTest, LookupUnknown) {
  Vocabulary v;
  EXPECT_EQ(v.Lookup("nope"), Vocabulary::kUnknown);
}

TEST(VocabularyTest, IdsWithMinCount) {
  Vocabulary v;
  v.AddCount("rare", 1);
  v.AddCount("mid", 3);
  v.AddCount("hot", 9);
  auto ids = v.IdsWithMinCount(3);
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_EQ(v.WordOf(ids[0]), "mid");
}

// --------------------------- Vector ops -------------------------------------

TEST(EmbeddingTest, DotNormCosine) {
  Vec a{1.0f, 0.0f}, b{0.0f, 2.0f}, c{3.0f, 0.0f};
  EXPECT_DOUBLE_EQ(Dot(a, b), 0.0);
  EXPECT_DOUBLE_EQ(Norm(c), 3.0);
  EXPECT_DOUBLE_EQ(Cosine(a, c), 1.0);
  EXPECT_DOUBLE_EQ(Cosine(a, b), 0.0);
}

TEST(EmbeddingTest, CosineOfZeroVectorIsZero) {
  Vec z{0.0f, 0.0f}, a{1.0f, 1.0f};
  EXPECT_DOUBLE_EQ(Cosine(z, a), 0.0);
}

TEST(EmbeddingTest, MeanVector) {
  Vec a{2.0f, 0.0f}, b{0.0f, 4.0f};
  auto m = MeanVector({&a, &b}, 2);
  EXPECT_FLOAT_EQ(m[0], 1.0f);
  EXPECT_FLOAT_EQ(m[1], 2.0f);
  auto empty = MeanVector({}, 3);
  EXPECT_EQ(empty.size(), 3u);
  EXPECT_FLOAT_EQ(empty[0], 0.0f);
}

TEST(EmbeddingTest, L2Distance) {
  Vec a{0.0f, 0.0f}, b{3.0f, 4.0f};
  EXPECT_DOUBLE_EQ(L2Distance(a, b), 5.0);
}

// --------------------------- Word2Vec ---------------------------------------

/// Builds a two-topic corpus: words within a topic co-occur, across topics
/// they never do. SGNS must place same-topic words closer.
std::vector<std::vector<std::string>> TwoTopicCorpus(int sentences_per_topic) {
  const std::vector<std::string> topic_a{"kernel", "graph", "vertex", "edge",
                                         "clique"};
  const std::vector<std::string> topic_b{"protein", "gene", "cell", "enzyme",
                                         "tissue"};
  iuad::Rng rng(3);
  std::vector<std::vector<std::string>> corpus;
  for (int t = 0; t < sentences_per_topic; ++t) {
    for (const auto* topic : {&topic_a, &topic_b}) {
      std::vector<std::string> sent;
      for (int w = 0; w < 6; ++w) {
        sent.push_back((*topic)[rng.NextBounded(topic->size())]);
      }
      corpus.push_back(std::move(sent));
    }
  }
  return corpus;
}

TEST(Word2VecTest, RejectsEmptyCorpus) {
  Word2Vec w2v;
  EXPECT_FALSE(w2v.Train({}).ok());
}

TEST(Word2VecTest, RejectsAllRareCorpus) {
  Word2VecConfig cfg;
  cfg.min_count = 5;
  Word2Vec w2v(cfg);
  EXPECT_FALSE(w2v.Train({{"one", "two"}, {"three", "four"}}).ok());
}

TEST(Word2VecTest, TrainsAndExposesVectors) {
  Word2VecConfig cfg;
  cfg.dim = 16;
  cfg.epochs = 2;
  Word2Vec w2v(cfg);
  ASSERT_TRUE(w2v.Train(TwoTopicCorpus(150)).ok());
  EXPECT_TRUE(w2v.trained());
  ASSERT_NE(w2v.VectorOf("kernel"), nullptr);
  EXPECT_EQ(w2v.VectorOf("kernel")->size(), 16u);
  EXPECT_EQ(w2v.VectorOf("unknown-word"), nullptr);
}

TEST(Word2VecTest, SameTopicWordsAreCloser) {
  Word2VecConfig cfg;
  cfg.dim = 16;
  cfg.epochs = 4;
  cfg.min_count = 2;
  Word2Vec w2v(cfg);
  ASSERT_TRUE(w2v.Train(TwoTopicCorpus(200)).ok());
  const double same = w2v.Similarity("kernel", "graph");
  const double cross = w2v.Similarity("kernel", "protein");
  EXPECT_GT(same, cross);
  EXPECT_GT(same, 0.3);
}

TEST(Word2VecTest, DeterministicAcrossRuns) {
  auto corpus = TwoTopicCorpus(50);
  Word2VecConfig cfg;
  cfg.dim = 8;
  cfg.epochs = 1;
  Word2Vec a(cfg), b(cfg);
  ASSERT_TRUE(a.Train(corpus).ok());
  ASSERT_TRUE(b.Train(corpus).ok());
  const Vec* va = a.VectorOf("kernel");
  const Vec* vb = b.VectorOf("kernel");
  ASSERT_NE(va, nullptr);
  ASSERT_NE(vb, nullptr);
  EXPECT_EQ(*va, *vb);
}

TEST(Word2VecTest, MeanOfMixedKnownUnknown) {
  Word2Vec w2v;
  ASSERT_TRUE(w2v.Train(TwoTopicCorpus(60)).ok());
  Vec m = w2v.MeanOf({"kernel", "definitely-not-a-word"});
  const Vec* k = w2v.VectorOf("kernel");
  ASSERT_NE(k, nullptr);
  EXPECT_EQ(m, *k);  // unknown word contributes nothing
  Vec zero = w2v.MeanOf({"definitely-not-a-word"});
  EXPECT_DOUBLE_EQ(Norm(zero), 0.0);
}

TEST(Word2VecTest, LearningRateDecayReachesFloorWithDroppedSentences) {
  // Regression: sentences with < 2 in-vocabulary words are dropped from
  // training, but their tokens used to inflate total_steps, so the linear
  // decay could never complete. Interleave trainable pairs with sentences
  // that survive encoding with a single token (one frequent word plus one
  // below-min_count word) and assert the schedule still bottoms out.
  std::vector<std::vector<std::string>> corpus;
  for (int i = 0; i < 40; ++i) {
    corpus.push_back({"alpha", "beta"});                    // kept: 2 tokens
    corpus.push_back({"alpha", "rare" + std::to_string(i)}); // dropped: 1 token
  }
  Word2VecConfig cfg;
  cfg.dim = 8;
  cfg.epochs = 2;
  cfg.min_count = 2;
  cfg.subsample = 0.0;  // keep the last token so final_lr is the last step's
  Word2Vec w2v(cfg);
  ASSERT_TRUE(w2v.Train(corpus).ok());
  EXPECT_EQ(w2v.trained_tokens(), 80);  // only the 40 kept pairs
  // At the final token steps_done == total_steps, so the decayed rate is
  // clamped to the floor exactly. With the bug (inflated total_steps) the
  // final rate stayed ~33% above the initial-rate-scaled remainder.
  EXPECT_DOUBLE_EQ(w2v.final_learning_rate(), 1e-4);
}

TEST(Word2VecTest, NegativeTableTracksUnigramDistribution) {
  // Skewed frequencies: counts 64 / 16 / 4 / 2. Each word's share of the
  // negative table must match its unigram^0.75 probability to within one
  // part in a thousand (the exact-boundary build is within 1/table_size per
  // word; the old `i / T > acc` sweep shifted every boundary late, piling
  // surplus slots onto early ids).
  std::vector<std::vector<std::string>> corpus;
  auto repeat = [&](const std::string& w, int n) {
    for (int i = 0; i < n; ++i) corpus.push_back({w, w});  // 2 tokens, kept
  };
  repeat("hot", 32);   // count 64
  repeat("mid", 8);    // count 16
  repeat("low", 2);    // count 4
  repeat("tail", 1);   // count 2
  Word2VecConfig cfg;
  cfg.dim = 4;
  cfg.epochs = 1;
  Word2Vec w2v(cfg);
  ASSERT_TRUE(w2v.Train(corpus).ok());

  const auto& vocab = w2v.vocabulary();
  const auto& table = w2v.negative_table();
  ASSERT_FALSE(table.empty());
  double total = 0.0;
  for (int id = 0; id < vocab.size(); ++id) {
    total += std::pow(static_cast<double>(vocab.CountOf(id)), 0.75);
  }
  std::vector<int64_t> slots(static_cast<size_t>(vocab.size()), 0);
  for (int id : table) {
    ASSERT_GE(id, 0);
    ASSERT_LT(id, vocab.size());
    ++slots[static_cast<size_t>(id)];
  }
  for (int id = 0; id < vocab.size(); ++id) {
    const double expected =
        std::pow(static_cast<double>(vocab.CountOf(id)), 0.75) / total;
    const double got = static_cast<double>(slots[static_cast<size_t>(id)]) /
                       static_cast<double>(table.size());
    EXPECT_NEAR(got, expected, 1e-3)
        << "word '" << vocab.WordOf(id) << "' over/under-represented";
  }
}

TEST(Word2VecTest, MostSimilarPrefersTopicMates) {
  Word2VecConfig cfg;
  cfg.epochs = 4;
  Word2Vec w2v(cfg);
  ASSERT_TRUE(w2v.Train(TwoTopicCorpus(200)).ok());
  auto top = w2v.MostSimilar("gene", 3);
  ASSERT_EQ(top.size(), 3u);
  const std::vector<std::string> topic_b{"protein", "cell", "enzyme", "tissue"};
  int in_topic = 0;
  for (const auto& [w, s] : top) {
    if (std::find(topic_b.begin(), topic_b.end(), w) != topic_b.end()) {
      ++in_topic;
    }
  }
  EXPECT_GE(in_topic, 2);
}

}  // namespace
}  // namespace iuad::text
