#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "data/paper_database.h"
#include "ml/adaboost.h"
#include "ml/decision_tree.h"
#include "ml/gbdt.h"
#include "ml/pairwise_features.h"
#include "ml/random_forest.h"
#include "testing_utils.h"
#include "util/rng.h"

namespace iuad::ml {
namespace {

/// y = 1 iff x0 > 0.5 XOR x1 > 0.5 — needs depth >= 2 trees.
void XorData(int n, uint64_t seed, Matrix* x, std::vector<int>* y) {
  iuad::Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    const float a = static_cast<float>(rng.UniformDouble());
    const float b = static_cast<float>(rng.UniformDouble());
    x->push_back({a, b});
    y->push_back(((a > 0.5f) != (b > 0.5f)) ? 1 : 0);
  }
}

double Accuracy(const std::function<int(const std::vector<float>&)>& predict,
                const Matrix& x, const std::vector<int>& y) {
  int correct = 0;
  for (size_t i = 0; i < x.size(); ++i) {
    if (predict(x[i]) == y[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(x.size());
}

// --------------------------- DecisionTreeClassifier -------------------------

TEST(DecisionTreeTest, RejectsBadInput) {
  DecisionTreeClassifier t;
  EXPECT_FALSE(t.Fit({}, {}).ok());
  EXPECT_FALSE(t.Fit({{1.0f}}, {1, 0}).ok());
  EXPECT_FALSE(t.Fit({{1.0f}}, {1}, {1.0, 2.0}).ok());
}

TEST(DecisionTreeTest, LearnsAxisAlignedSplit) {
  Matrix x;
  std::vector<int> y;
  for (int i = 0; i < 100; ++i) {
    const float v = static_cast<float>(i) / 100.0f;
    x.push_back({v});
    y.push_back(v > 0.35f ? 1 : 0);
  }
  DecisionTreeClassifier t;
  ASSERT_TRUE(t.Fit(x, y).ok());
  EXPECT_EQ(t.Predict({0.1f}), 0);
  EXPECT_EQ(t.Predict({0.9f}), 1);
  EXPECT_GT(t.num_nodes(), 1);
}

TEST(DecisionTreeTest, LearnsConjunctionWithDepthTwo) {
  // y = x0 > 0.5 AND x1 > 0.5: greedy CART learns this exactly at depth 2.
  // (Pure XOR has zero first-split gini gain and is a known pathological
  // case for a single greedy tree — the ensemble tests cover XOR.)
  iuad::Rng rng(1);
  Matrix x;
  std::vector<int> y;
  for (int i = 0; i < 600; ++i) {
    const float a = static_cast<float>(rng.UniformDouble());
    const float b = static_cast<float>(rng.UniformDouble());
    x.push_back({a, b});
    y.push_back((a > 0.5f && b > 0.5f) ? 1 : 0);
  }
  TreeConfig cfg;
  cfg.max_depth = 3;
  DecisionTreeClassifier t(cfg);
  ASSERT_TRUE(t.Fit(x, y).ok());
  EXPECT_GT(Accuracy([&](const auto& v) { return t.Predict(v); }, x, y), 0.97);
}

TEST(DecisionTreeTest, DepthZeroIsMajorityVote) {
  TreeConfig cfg;
  cfg.max_depth = 0;
  DecisionTreeClassifier t(cfg);
  ASSERT_TRUE(t.Fit({{0.0f}, {1.0f}, {2.0f}}, {1, 1, 0}).ok());
  EXPECT_EQ(t.num_nodes(), 1);
  EXPECT_NEAR(t.PredictProba({5.0f}), 2.0 / 3.0, 1e-9);
}

TEST(DecisionTreeTest, SampleWeightsShiftDecision) {
  // Same data, but the single positive carries overwhelming weight.
  Matrix x{{0.0f}, {0.0f}, {0.0f}};
  std::vector<int> y{0, 0, 1};
  TreeConfig cfg;
  cfg.max_depth = 0;
  DecisionTreeClassifier t(cfg);
  ASSERT_TRUE(t.Fit(x, y, {1.0, 1.0, 10.0}).ok());
  EXPECT_GT(t.PredictProba({0.0f}), 0.5);
}

TEST(DecisionTreeTest, PureNodeStopsEarly) {
  DecisionTreeClassifier t;
  ASSERT_TRUE(t.Fit({{0.0f}, {1.0f}}, {1, 1}).ok());
  EXPECT_EQ(t.num_nodes(), 1);
}

// --------------------------- GradientTree -----------------------------------

TEST(GradientTreeTest, LeafValueIsNegGOverH) {
  GradientTree t;
  // One leaf (no split possible): value = -G/(H+0).
  ASSERT_TRUE(t.Fit({{0.0f}, {0.0f}}, {1.0, 3.0}, {1.0, 1.0}).ok());
  EXPECT_NEAR(t.Predict({0.0f}), -2.0, 1e-9);
}

TEST(GradientTreeTest, LambdaShrinksLeaves) {
  GradientTree::Config cfg;
  cfg.lambda = 2.0;
  GradientTree t(cfg);
  ASSERT_TRUE(t.Fit({{0.0f}, {0.0f}}, {1.0, 3.0}, {1.0, 1.0}).ok());
  EXPECT_NEAR(t.Predict({0.0f}), -4.0 / (2.0 + 2.0), 1e-6);
}

TEST(GradientTreeTest, SplitsOnInformativeFeature) {
  GradientTree::Config cfg;
  cfg.max_depth = 2;
  cfg.min_samples_leaf = 1;
  GradientTree t(cfg);
  Matrix x;
  std::vector<double> g, h;
  for (int i = 0; i < 40; ++i) {
    const float v = i < 20 ? 0.0f : 1.0f;
    x.push_back({v});
    g.push_back(i < 20 ? 2.0 : -2.0);
    h.push_back(1.0);
  }
  ASSERT_TRUE(t.Fit(x, g, h).ok());
  EXPECT_LT(t.Predict({0.0f}), -1.5);
  EXPECT_GT(t.Predict({1.0f}), 1.5);
}

TEST(GradientTreeTest, GammaBlocksWeakSplits) {
  GradientTree::Config strict;
  strict.gamma = 1e9;  // no split can clear this bar
  GradientTree t(strict);
  Matrix x{{0.0f}, {1.0f}, {0.0f}, {1.0f}, {0.0f}, {1.0f}, {0.0f}, {1.0f}};
  std::vector<double> g{1, -1, 1, -1, 1, -1, 1, -1};
  std::vector<double> h(8, 1.0);
  ASSERT_TRUE(t.Fit(x, g, h).ok());
  EXPECT_EQ(t.num_nodes(), 1);
}

// --------------------------- Ensembles --------------------------------------

TEST(RandomForestTest, LearnsXor) {
  Matrix x, xt;
  std::vector<int> y, yt;
  XorData(800, 2, &x, &y);
  XorData(300, 3, &xt, &yt);
  RandomForestConfig cfg;
  cfg.num_trees = 30;
  RandomForest rf(cfg);
  ASSERT_TRUE(rf.Fit(x, y).ok());
  EXPECT_EQ(rf.num_trees(), 30);
  EXPECT_GT(Accuracy([&](const auto& v) { return rf.Predict(v); }, xt, yt),
            0.9);
}

TEST(RandomForestTest, RejectsEmpty) {
  RandomForest rf;
  EXPECT_FALSE(rf.Fit({}, {}).ok());
}

TEST(AdaBoostTest, LearnsXor) {
  Matrix x, xt;
  std::vector<int> y, yt;
  XorData(800, 4, &x, &y);
  XorData(300, 5, &xt, &yt);
  AdaBoost ab;
  ASSERT_TRUE(ab.Fit(x, y).ok());
  EXPECT_GT(ab.num_rounds_used(), 1);
  EXPECT_GT(Accuracy([&](const auto& v) { return ab.Predict(v); }, xt, yt),
            0.9);
}

TEST(AdaBoostTest, ProbaMonotoneInMargin) {
  Matrix x;
  std::vector<int> y;
  XorData(400, 6, &x, &y);
  AdaBoost ab;
  ASSERT_TRUE(ab.Fit(x, y).ok());
  for (int i = 0; i < 30; ++i) {
    const double p = ab.PredictProba(x[static_cast<size_t>(i)]);
    const double m = ab.Margin(x[static_cast<size_t>(i)]);
    EXPECT_EQ(p >= 0.5, m >= 0.0);
  }
}

TEST(GbdtTest, LearnsXorFirstOrder) {
  Matrix x, xt;
  std::vector<int> y, yt;
  XorData(800, 7, &x, &y);
  XorData(300, 8, &xt, &yt);
  Gbdt g;
  ASSERT_TRUE(g.Fit(x, y).ok());
  EXPECT_GT(Accuracy([&](const auto& v) { return g.Predict(v); }, xt, yt),
            0.9);
}

TEST(GbdtTest, XgboostStyleLearnsXor) {
  Matrix x, xt;
  std::vector<int> y, yt;
  XorData(800, 9, &x, &y);
  XorData(300, 10, &xt, &yt);
  Gbdt g(XgboostStyleConfig());
  ASSERT_TRUE(g.Fit(x, y).ok());
  EXPECT_GT(Accuracy([&](const auto& v) { return g.Predict(v); }, xt, yt),
            0.9);
}

TEST(GbdtTest, BaseScoreMatchesPrior) {
  // Without trees (0 rounds) the probability must equal the class prior.
  GbdtConfig cfg;
  cfg.num_trees = 0;
  Gbdt g(cfg);
  Matrix x{{0.0f}, {0.0f}, {0.0f}, {0.0f}};
  std::vector<int> y{1, 0, 0, 0};
  ASSERT_TRUE(g.Fit(x, y).ok());
  EXPECT_NEAR(g.PredictProba({0.0f}), 0.25, 1e-9);
}

// --------------------------- Pairwise features ------------------------------

TEST(PairwiseFeaturesTest, SharedEvidenceIncreasesFeatures) {
  data::PaperDatabase db;
  const int p0 = db.AddPaper(iuad::testing::MakePaper(
      {"X", "Alice", "Bob"}, "graph kernels rock", "ICDE", 2018));
  const int p1 = db.AddPaper(iuad::testing::MakePaper(
      {"X", "Alice", "Carol"}, "graph kernels again", "ICDE", 2019));
  const int p2 = db.AddPaper(iuad::testing::MakePaper(
      {"X", "Dave"}, "enzyme pathways", "BioConf", 2005));

  auto close = ExtractPairFeatures(db, p0, p1, "X", nullptr);
  auto far = ExtractPairFeatures(db, p0, p2, "X", nullptr);
  ASSERT_EQ(close.size(), static_cast<size_t>(kNumPairFeatures));
  EXPECT_GT(close[0], far[0]);  // shared coauthors
  EXPECT_GT(close[2], far[2]);  // shared keywords
  EXPECT_EQ(close[5], 1.0f);    // same venue
  EXPECT_EQ(far[5], 0.0f);
  EXPECT_LT(close[7], far[7]);  // year gap
}

TEST(PairwiseFeaturesTest, FocalNameExcludedFromCoauthors) {
  data::PaperDatabase db;
  const int p0 = db.AddPaper(iuad::testing::MakePaper({"X"}, "t1"));
  const int p1 = db.AddPaper(iuad::testing::MakePaper({"X"}, "t2"));
  auto f = ExtractPairFeatures(db, p0, p1, "X", nullptr);
  EXPECT_EQ(f[0], 0.0f);  // no coauthors at all
  EXPECT_EQ(f[1], 0.0f);
}

TEST(PairwiseFeaturesTest, DatasetLabelsFromGroundTruth) {
  data::PaperDatabase db;
  db.AddPaper(iuad::testing::MakePaper({"X", "A"}, "t u v", "V1", 2000, {1, 10}));
  db.AddPaper(iuad::testing::MakePaper({"X", "B"}, "t w", "V1", 2001, {1, 11}));
  db.AddPaper(iuad::testing::MakePaper({"X", "C"}, "z q", "V2", 2010, {2, 12}));
  iuad::Rng rng(1);
  auto ds = BuildPairwiseDataset(db, {"X"}, nullptr, 100, &rng,
                                 /*balance_classes=*/false);
  ASSERT_EQ(ds.x.size(), 3u);  // C(3,2) pairs
  int positives = 0;
  for (int label : ds.y) positives += label;
  EXPECT_EQ(positives, 1);  // only papers 0-1 share author 1

  // Balanced mode subsamples the majority (negative) class to 1:1.
  iuad::Rng rng2(1);
  auto balanced = BuildPairwiseDataset(db, {"X"}, nullptr, 100, &rng2,
                                       /*balance_classes=*/true);
  ASSERT_EQ(balanced.x.size(), 2u);
  int bal_pos = 0;
  for (int label : balanced.y) bal_pos += label;
  EXPECT_EQ(bal_pos, 1);
}

TEST(PairwiseFeaturesTest, UnlabeledPairsSkipped) {
  data::PaperDatabase db;
  db.AddPaper(iuad::testing::MakePaper({"X"}, "a b"));
  db.AddPaper(iuad::testing::MakePaper({"X"}, "c d"));
  iuad::Rng rng(1);
  auto ds = BuildPairwiseDataset(db, {"X"}, nullptr, 100, &rng);
  EXPECT_TRUE(ds.x.empty());
}

TEST(PairwiseFeaturesTest, MaxPairsCapRespected) {
  data::PaperDatabase db;
  for (int i = 0; i < 12; ++i) {
    db.AddPaper(iuad::testing::MakePaper({"X"}, "w" + std::to_string(i), "V",
                                         2000 + i, {i % 3}));
  }
  iuad::Rng rng(1);
  auto ds = BuildPairwiseDataset(db, {"X"}, nullptr, 10, &rng,
                                 /*balance_classes=*/false);
  EXPECT_EQ(ds.x.size(), 10u);
}

}  // namespace
}  // namespace iuad::ml
