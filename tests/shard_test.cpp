/// shard::ShardRouter + shard::BlockPlacement: the sharding contract. The
/// acceptance property of the subsystem is that N-shard ingestion through
/// the router — at any shard count, any producer count, through Submit or
/// SubmitAt — produces byte-identical assignments (vertices, scores,
/// new-author births) to sequential IncrementalDisambiguator::AddPaper
/// calls in sequence order. Placement must be deterministic and, under the
/// size-aware policy, balanced; reads must route to the owning shard and
/// stay safe during ingestion.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "core/incremental.h"
#include "core/pipeline.h"
#include "shard/placement.h"
#include "shard/shard_router.h"
#include "testing_utils.h"

namespace iuad::shard {
namespace {

core::IuadConfig FastConfig() {
  core::IuadConfig cfg;
  cfg.word2vec.dim = 16;
  cfg.word2vec.epochs = 2;
  cfg.max_split_vertices = 50;
  return cfg;
}

struct Fixture {
  data::PaperDatabase history;
  std::vector<data::Paper> stream;
  core::DisambiguationResult result;
};

Fixture MakeFixture(uint64_t seed, int holdout, const core::IuadConfig& cfg) {
  Fixture f;
  auto corpus = iuad::testing::SmallCorpus(seed);
  auto [history, stream] = corpus.db.HoldOutLatest(holdout);
  f.history = std::move(history);
  f.stream = std::move(stream);
  auto result = core::IuadPipeline(cfg).Run(f.history);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  f.result = std::move(*result);
  return f;
}

/// Order-sensitive digest including the score bits: "byte-identical" here
/// means bitwise-equal doubles, not just the same argmax.
std::string TraceOf(const std::vector<core::IncrementalAssignment>& as) {
  std::string t;
  for (const auto& a : as) {
    double score = a.best_score;
    uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(score), "double is 64-bit");
    std::memcpy(&bits, &score, sizeof(bits));
    t += a.name + ":" + std::to_string(a.vertex) +
         (a.created_new ? "*" : "") + "#" + std::to_string(bits) + "/" +
         std::to_string(a.num_candidates) + ";";
  }
  return t;
}

/// Sequential ground truth: one AddPaper per stream paper, in order.
std::vector<std::string> SequentialTraces(const core::IuadConfig& cfg,
                                          uint64_t seed, int holdout) {
  Fixture f = MakeFixture(seed, holdout, cfg);
  core::IncrementalDisambiguator inc(&f.history, &f.result, cfg);
  std::vector<std::string> traces;
  for (const auto& paper : f.stream) {
    auto r = inc.AddPaper(paper);
    EXPECT_TRUE(r.ok());
    traces.push_back(TraceOf(*r));
  }
  return traces;
}

/// Router run: `producers` threads race over the stream with SubmitAt.
std::vector<std::string> RouterTraces(core::IuadConfig cfg, uint64_t seed,
                                      int holdout, int num_shards,
                                      int producers,
                                      core::ShardPlacement placement =
                                          core::ShardPlacement::kSizeAware) {
  cfg.num_shards = num_shards;
  cfg.shard_placement = placement;
  Fixture f = MakeFixture(seed, holdout, cfg);
  std::vector<std::future<ShardRouter::Assignments>> futures(f.stream.size());
  ShardRouter router(&f.history, &f.result, cfg);
  std::atomic<size_t> next{0};
  auto producer = [&] {
    for (size_t i = next.fetch_add(1); i < f.stream.size();
         i = next.fetch_add(1)) {
      futures[i] = router.SubmitAt(i, f.stream[i]);
    }
  };
  std::vector<std::thread> threads;
  for (int t = 1; t < producers; ++t) threads.emplace_back(producer);
  producer();
  for (auto& t : threads) t.join();
  router.Stop();
  std::vector<std::string> traces;
  for (auto& fut : futures) {
    auto r = fut.get();
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    traces.push_back(r.ok() ? TraceOf(*r) : "FAILED");
  }
  return traces;
}

/// Sequential ground truth for a hand-built stream over the seed fixture.
std::vector<std::string> SequentialTracesForStream(
    core::IuadConfig cfg, uint64_t seed,
    const std::vector<data::Paper>& stream) {
  cfg.incremental_refresh_interval = 1000;  // match RunPipelined
  Fixture f = MakeFixture(seed, 0, cfg);
  core::IncrementalDisambiguator inc(&f.history, &f.result, cfg);
  std::vector<std::string> traces;
  for (const auto& paper : stream) {
    auto r = inc.AddPaper(paper);
    EXPECT_TRUE(r.ok());
    traces.push_back(TraceOf(*r));
  }
  return traces;
}

struct PipelineRun {
  std::vector<std::string> traces;
  serve::ServiceStats stats;
};

/// Router run with deterministic window shapes: every sequence but 0 is
/// queued up front (the router sleeps on the hole), then sequence 0 lands
/// and the full contiguous run is available — so every window is exactly
/// min(pipeline_depth, papers remaining) and the pipeline counters are
/// exact, not timing-dependent.
PipelineRun RunPipelined(core::IuadConfig cfg, uint64_t seed,
                         const std::vector<data::Paper>& stream,
                         int num_shards, int depth) {
  cfg.num_shards = num_shards;
  cfg.pipeline_depth = depth;
  cfg.ingest_queue_capacity = static_cast<int>(stream.size()) + 8;
  cfg.incremental_refresh_interval = 1000;  // never cap a window here
  Fixture f = MakeFixture(seed, 0, cfg);
  ShardRouter router(&f.history, &f.result, cfg);
  std::vector<std::future<ShardRouter::Assignments>> futures(stream.size());
  for (size_t i = 1; i < stream.size(); ++i) {
    futures[i] = router.SubmitAt(i, stream[i]);
  }
  futures[0] = router.SubmitAt(0, stream[0]);
  router.Drain();
  PipelineRun run;
  run.stats = router.Stats();
  for (auto& fut : futures) {
    auto r = fut.get();
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    run.traces.push_back(r.ok() ? TraceOf(*r) : "FAILED");
  }
  router.Stop();
  return run;
}

// --------------------------- BlockPlacement ---------------------------------

TEST(BlockPlacementTest, DeterministicAndCoversAllShards) {
  auto corpus = iuad::testing::SmallCorpus(21);
  auto result = core::IuadPipeline(FastConfig()).Run(corpus.db);
  ASSERT_TRUE(result.ok());
  for (core::ShardPlacement policy :
       {core::ShardPlacement::kSizeAware, core::ShardPlacement::kHash}) {
    const auto a = BlockPlacement::Build(result->graph, 4, policy);
    const auto b = BlockPlacement::Build(result->graph, 4, policy);
    EXPECT_EQ(a.num_shards(), 4);
    EXPECT_GT(a.num_blocks(), 0);
    int64_t total = 0;
    for (const std::string& name : result->graph.Names()) {
      const int s = a.ShardOf(name);
      ASSERT_GE(s, 0);
      ASSERT_LT(s, 4);
      EXPECT_EQ(s, b.ShardOf(name)) << "nondeterministic placement of "
                                    << name;
    }
    for (int64_t w : a.shard_weights()) {
      EXPECT_GT(w, 0);  // this corpus has plenty of blocks for every shard
      total += w;
    }
    EXPECT_GT(total, a.num_blocks());  // weights count vertices + papers
  }
}

TEST(BlockPlacementTest, SizeAwareBalancesBetterThanWorstCase) {
  auto corpus = iuad::testing::SmallCorpus(22);
  auto result = core::IuadPipeline(FastConfig()).Run(corpus.db);
  ASSERT_TRUE(result.ok());
  const auto p = BlockPlacement::Build(result->graph, 4,
                                       core::ShardPlacement::kSizeAware);
  int64_t min_w = p.shard_weights()[0], max_w = p.shard_weights()[0];
  for (int64_t w : p.shard_weights()) {
    min_w = std::min(min_w, w);
    max_w = std::max(max_w, w);
  }
  // LPT packing of many small blocks lands very close to even; 1.25 leaves
  // slack for one giant block dominating a shard.
  EXPECT_LE(static_cast<double>(max_w),
            1.25 * static_cast<double>(std::max<int64_t>(1, min_w)));
}

TEST(BlockPlacementTest, UnseenBlocksRouteThroughTheHashFallback) {
  auto corpus = iuad::testing::SmallCorpus(23);
  auto result = core::IuadPipeline(FastConfig()).Run(corpus.db);
  ASSERT_TRUE(result.ok());
  const auto p = BlockPlacement::Build(result->graph, 4,
                                       core::ShardPlacement::kSizeAware);
  const std::string unseen = "Zz. Never-Seen-Before";
  const int s = p.ShardOf(unseen);
  EXPECT_GE(s, 0);
  EXPECT_LT(s, 4);
  EXPECT_EQ(s, static_cast<int>(NameHash(unseen) % 4));
}

// --------------------------- ShardRouter ------------------------------------

/// The subsystem acceptance property: 1-shard and 4-shard ingestion, with
/// one and with several racing producers, are byte-identical to sequential
/// AddPaper — scores included.
TEST(ShardRouterTest, MatchesSequentialAtAnyShardAndProducerCount) {
  const core::IuadConfig cfg = FastConfig();
  const auto sequential = SequentialTraces(cfg, 33, 60);
  ASSERT_EQ(sequential.size(), 60u);
  EXPECT_EQ(RouterTraces(cfg, 33, 60, 1, 1), sequential);
  EXPECT_EQ(RouterTraces(cfg, 33, 60, 4, 1), sequential);
  EXPECT_EQ(RouterTraces(cfg, 33, 60, 4, 4), sequential);
}

/// Adversarial corpus 1: every paper carries the SAME two name blocks, so
/// inside any window only the head paper can score speculatively — the
/// rest must serialize behind it (conflict stalls) and rescore every byline
/// at commit. The assignments must still be byte-identical to sequential at
/// every depth, and the counters must account for exactly the serialized
/// papers.
TEST(ShardRouterTest, HotBlockStreamSerializesAndStaysByteIdentical) {
  const core::IuadConfig cfg = FastConfig();
  const int64_t n = 12;
  std::vector<data::Paper> stream;
  for (int64_t i = 0; i < n; ++i) {
    stream.push_back(iuad::testing::MakePaper(
        {"Hot A. Alpha", "Hot B. Beta"},
        "hot block paper " + std::to_string(i)));
  }
  const auto sequential = SequentialTracesForStream(cfg, 51, stream);
  for (int shards : {1, 4}) {
    for (int depth : {1, 2, 8}) {
      const PipelineRun run = RunPipelined(cfg, 51, stream, shards, depth);
      EXPECT_EQ(run.traces, sequential)
          << "shards=" << shards << " depth=" << depth;
      const int64_t windows = (n + depth - 1) / depth;
      EXPECT_EQ(run.stats.pipeline_depth, depth);
      EXPECT_EQ(run.stats.pipeline_windows, windows);
      // Exactly one paper per window overlaps (the head); the pipeline
      // fully serializes the other n - windows papers.
      EXPECT_DOUBLE_EQ(run.stats.pipeline_occupancy, 1.0);
      EXPECT_EQ(run.stats.conflict_stalls, n - windows)
          << "shards=" << shards << " depth=" << depth;
      // Both bylines of every serialized paper rescore at commit.
      EXPECT_EQ(run.stats.speculative_rescores, 2 * (n - windows));
    }
  }
}

/// Adversarial corpus 2: every paper's blocks are globally unique, so no
/// byline ever conflicts — windows fill to the configured depth and every
/// paper overlaps (max pipeline occupancy), with zero stalls or rescores.
TEST(ShardRouterTest, DisjointBlockStreamOverlapsFullyAndStaysByteIdentical) {
  const core::IuadConfig cfg = FastConfig();
  const int64_t n = 12;
  std::vector<data::Paper> stream;
  for (int64_t i = 0; i < n; ++i) {
    stream.push_back(iuad::testing::MakePaper(
        {"Uniq" + std::to_string(i) + " A. Left",
         "Uniq" + std::to_string(i) + " B. Right"},
        "disjoint block paper " + std::to_string(i)));
  }
  const auto sequential = SequentialTracesForStream(cfg, 52, stream);
  for (int shards : {1, 4}) {
    for (int depth : {1, 2, 8}) {
      const PipelineRun run = RunPipelined(cfg, 52, stream, shards, depth);
      EXPECT_EQ(run.traces, sequential)
          << "shards=" << shards << " depth=" << depth;
      const int64_t windows = (n + depth - 1) / depth;
      EXPECT_EQ(run.stats.pipeline_windows, windows);
      // Every paper scored speculatively: occupancy == mean window fill.
      EXPECT_DOUBLE_EQ(run.stats.pipeline_occupancy,
                       static_cast<double>(n) /
                           static_cast<double>(windows));
      EXPECT_EQ(run.stats.conflict_stalls, 0);
      EXPECT_EQ(run.stats.speculative_rescores, 0);
    }
  }
}

/// Acceptance gate for the observability layer: toggling `metrics_enabled`
/// must be byte-invisible to assignments — identical traces (score bits
/// included) at every shard x producer x pipeline-depth combination. The
/// registry counters stay live either way; the flag only gates clock reads,
/// and neither may leak into a decision path.
TEST(ShardRouterTest, MetricsToggleIsByteInvisibleToAssignments) {
  core::IuadConfig cfg = FastConfig();
  const auto sequential = SequentialTraces(cfg, 53, 30);
  ASSERT_EQ(sequential.size(), 30u);
  for (int shards : {1, 4}) {
    for (int producers : {1, 4}) {
      for (int depth : {1, 8}) {
        cfg.pipeline_depth = depth;
        cfg.metrics_enabled = true;
        const auto on = RouterTraces(cfg, 53, 30, shards, producers);
        cfg.metrics_enabled = false;
        const auto off = RouterTraces(cfg, 53, 30, shards, producers);
        EXPECT_EQ(on, sequential)
            << "metrics-on diverged: shards=" << shards
            << " producers=" << producers << " depth=" << depth;
        EXPECT_EQ(off, on)
            << "metrics toggle changed assignments: shards=" << shards
            << " producers=" << producers << " depth=" << depth;
      }
    }
  }
}

/// Same acceptance gate for the tracing layer: `trace_enabled` gates only
/// flight-recorder clock reads and ring stores, so toggling it (with
/// metrics in both states too — the stamp gating is the OR of the two
/// flags) must leave every assignment byte-identical.
TEST(ShardRouterTest, TracingToggleIsByteInvisibleToAssignments) {
  core::IuadConfig cfg = FastConfig();
  const auto sequential = SequentialTraces(cfg, 57, 30);
  ASSERT_EQ(sequential.size(), 30u);
  for (int shards : {1, 4}) {
    for (int producers : {1, 4}) {
      for (int depth : {1, 8}) {
        cfg.pipeline_depth = depth;
        cfg.trace_enabled = true;
        const auto on = RouterTraces(cfg, 57, 30, shards, producers);
        cfg.trace_enabled = false;
        const auto off = RouterTraces(cfg, 57, 30, shards, producers);
        cfg.metrics_enabled = false;  // both observability layers dark
        const auto dark = RouterTraces(cfg, 57, 30, shards, producers);
        cfg.metrics_enabled = true;
        EXPECT_EQ(on, sequential)
            << "tracing-on diverged: shards=" << shards
            << " producers=" << producers << " depth=" << depth;
        EXPECT_EQ(off, on)
            << "trace toggle changed assignments: shards=" << shards
            << " producers=" << producers << " depth=" << depth;
        EXPECT_EQ(dark, on)
            << "all-off diverged: shards=" << shards
            << " producers=" << producers << " depth=" << depth;
      }
    }
  }
}

TEST(ShardRouterTest, HashPlacementIsEquallyDeterministic) {
  const core::IuadConfig cfg = FastConfig();
  const auto sequential = SequentialTraces(cfg, 34, 40);
  EXPECT_EQ(RouterTraces(cfg, 34, 40, 3, 4, core::ShardPlacement::kHash),
            sequential);
}

TEST(ShardRouterTest, TinyQueueAndRefreshWindowsStayLiveAndDeterministic) {
  core::IuadConfig cfg = FastConfig();
  cfg.ingest_queue_capacity = 1;  // every out-of-turn producer must block
  cfg.ingest_refresh_window = 3;
  cfg.incremental_refresh_interval = 7;  // exercise mid-stream refreshes
  const auto sequential = SequentialTraces(cfg, 35, 40);
  EXPECT_EQ(RouterTraces(cfg, 35, 40, 4, 4), sequential);
}

TEST(ShardRouterTest, SubmitAssignsArrivalOrderSequences) {
  core::IuadConfig cfg = FastConfig();
  cfg.num_shards = 3;
  Fixture f = MakeFixture(36, 30, cfg);
  const auto sequential = SequentialTraces(cfg, 36, 30);
  ShardRouter router(&f.history, &f.result, cfg);
  std::vector<std::future<ShardRouter::Assignments>> futures;
  for (const auto& paper : f.stream) futures.push_back(router.Submit(paper));
  router.Drain();
  for (size_t i = 0; i < futures.size(); ++i) {
    auto r = futures[i].get();
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(TraceOf(*r), sequential[i]);
  }
  const auto stats = router.Stats();
  EXPECT_EQ(stats.papers_applied,
            static_cast<int64_t>(f.stream.size()));
  EXPECT_EQ(stats.queued_now, 0);
  EXPECT_EQ(stats.reorder_held, 0);
  router.Stop();
}

TEST(ShardRouterTest, ReadsRouteToOwningShardAndAggregateStats) {
  core::IuadConfig cfg = FastConfig();
  cfg.num_shards = 4;
  cfg.ingest_refresh_window = 5;
  Fixture f = MakeFixture(37, 50, cfg);
  const std::string name = f.history.paper(0).author_names[0];
  ShardRouter router(&f.history, &f.result, cfg);

  std::atomic<bool> done{false};
  std::atomic<int64_t> reads{0};
  std::thread reader([&] {
    while (!done.load()) {
      const auto records = router.AuthorsByName(name);
      for (const auto& rec : records) {
        EXPECT_GE(static_cast<int>(router.PublicationsOf(rec.vertex).size()),
                  rec.num_papers);
      }
      (void)router.Stats();
      ++reads;
    }
  });
  std::vector<std::future<ShardRouter::Assignments>> futures;
  for (const auto& paper : f.stream) futures.push_back(router.Submit(paper));
  router.Drain();
  done = true;
  reader.join();
  for (auto& fut : futures) EXPECT_TRUE(fut.get().ok());
  EXPECT_GT(reads.load(), 0);

  const auto stats = router.Stats();
  EXPECT_EQ(stats.num_shards, 4);
  ASSERT_EQ(stats.shards.size(), 4u);
  EXPECT_EQ(stats.papers_applied,
            static_cast<int64_t>(f.stream.size()));
  EXPECT_GE(stats.epoch, 1);
  EXPECT_EQ(stats.num_alive_vertices, f.result.graph.num_alive());
  EXPECT_EQ(stats.num_edges, f.result.graph.num_edges());
  // Per-shard counters are a partition of the totals.
  int64_t bylines = 0, assignments = 0, new_authors = 0, blocks = 0;
  for (const auto& s : stats.shards) {
    bylines += s.bylines_scored;
    assignments += s.assignments;
    new_authors += s.new_authors;
    blocks += s.owned_blocks;
  }
  EXPECT_EQ(bylines, stats.assignments);
  EXPECT_EQ(assignments, stats.assignments);
  EXPECT_EQ(new_authors, stats.new_authors);
  EXPECT_GT(blocks, 0);
  // AuthorsByName went to the owning shard's view and saw the vertex.
  EXPECT_FALSE(router.AuthorsByName(name).empty());
  EXPECT_GE(router.ShardOf(name), 0);
  EXPECT_LT(router.ShardOf(name), 4);
  router.Stop();
}

TEST(ShardRouterTest, BrandNewNameIsServedAfterIngestion) {
  core::IuadConfig cfg = FastConfig();
  cfg.num_shards = 4;
  Fixture f = MakeFixture(38, 5, cfg);
  ShardRouter router(&f.history, &f.result, cfg);
  const std::string unseen = "Qq. Unseen-Author";
  ASSERT_TRUE(router.AuthorsByName(unseen).empty());
  auto fut = router.Submit(
      iuad::testing::MakePaper({unseen, "Some Coauthor"}, "fresh topic"));
  router.Drain();
  auto r = fut.get();
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 2u);
  EXPECT_TRUE((*r)[0].created_new);
  // The unseen block routed through the hash fallback, and the published
  // view on that shard now serves it.
  const auto records = router.AuthorsByName(unseen);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].vertex, (*r)[0].vertex);
  EXPECT_EQ(router.ShardOf(unseen),
            static_cast<int>(NameHash(unseen) % 4));
  router.Stop();
}

TEST(ShardRouterTest, DuplicateSequenceFailsThatSubmissionOnly) {
  core::IuadConfig cfg = FastConfig();
  cfg.num_shards = 2;
  Fixture f = MakeFixture(39, 10, cfg);
  ShardRouter router(&f.history, &f.result, cfg);
  auto ok1 = router.SubmitAt(0, f.stream[0]);
  auto dup = router.SubmitAt(0, f.stream[1]);
  auto r_dup = dup.get();
  ASSERT_FALSE(r_dup.ok());
  EXPECT_EQ(r_dup.status().code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(ok1.get().ok());
  router.Stop();
}

TEST(ShardRouterTest, StopFailsStrandedSubmissionsAndRejectsNewOnes) {
  core::IuadConfig cfg = FastConfig();
  cfg.num_shards = 2;
  Fixture f = MakeFixture(40, 10, cfg);
  ShardRouter router(&f.history, &f.result, cfg);
  // Sequence 1 can never apply: sequence 0 is a hole we never fill.
  auto stranded = router.SubmitAt(1, f.stream[0]);
  {
    const auto stats = router.Stats();
    EXPECT_EQ(stats.queued_now, 1);
    EXPECT_EQ(stats.reorder_held, 1);
  }
  router.Stop();
  auto r = stranded.get();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
  auto late = router.Submit(f.stream[1]);
  auto r_late = late.get();
  ASSERT_FALSE(r_late.ok());
  EXPECT_EQ(r_late.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ShardRouterTest, BadPaperFailsItsFutureWithoutWedgingTheQueue) {
  core::IuadConfig cfg = FastConfig();
  cfg.num_shards = 2;
  Fixture f = MakeFixture(41, 10, cfg);
  ShardRouter router(&f.history, &f.result, cfg);
  auto good_before = router.Submit(f.stream[0]);
  auto bad = router.Submit(data::Paper{});  // empty byline -> InvalidArgument
  auto good_after = router.Submit(f.stream[1]);
  router.Drain();
  EXPECT_TRUE(good_before.get().ok());
  auto r_bad = bad.get();
  ASSERT_FALSE(r_bad.ok());
  EXPECT_EQ(r_bad.status().code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(good_after.get().ok());
  EXPECT_EQ(router.Stats().papers_applied, 2);
  router.Stop();
}

}  // namespace
}  // namespace iuad::shard
