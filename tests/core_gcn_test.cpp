#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/gcn_builder.h"
#include "core/pipeline.h"
#include "eval/evaluator.h"
#include "testing_utils.h"
#include "util/rng.h"

namespace iuad::core {
namespace {

using graph::CollabGraph;
using graph::VertexId;

// --------------------------- Vertex splitting -------------------------------

TEST(SplitVertexTest, SplitsPapersAndEdges) {
  CollabGraph g;
  const VertexId v = g.AddVertex("X", {0, 1, 2, 3});
  const VertexId n1 = g.AddVertex("N1", {0, 1});
  const VertexId n2 = g.AddVertex("N2", {2, 3});
  ASSERT_TRUE(g.AddEdgePapers(v, n1, {0, 1}).ok());
  ASSERT_TRUE(g.AddEdgePapers(v, n2, {2, 3}).ok());

  iuad::Rng rng(4);
  auto v2 = SplitVertexForAugmentation(&g, v, &rng);
  ASSERT_TRUE(v2.ok());
  EXPECT_TRUE(g.alive(*v2));
  EXPECT_EQ(g.NameOf(*v2), "X");
  // Paper sets partition the original.
  std::vector<int> all = g.vertex(v).papers;
  all.insert(all.end(), g.vertex(*v2).papers.begin(),
             g.vertex(*v2).papers.end());
  std::sort(all.begin(), all.end());
  EXPECT_EQ(all, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(g.vertex(v).papers.size(), 2u);
  EXPECT_EQ(g.vertex(*v2).papers.size(), 2u);
  // Every edge paper lives on the half owning that paper.
  for (VertexId host : {v, *v2}) {
    const auto& papers = g.vertex(host).papers;
    for (const auto& [nbr, eps] : g.NeighborsOf(host)) {
      for (int pid : eps) {
        EXPECT_TRUE(std::binary_search(papers.begin(), papers.end(), pid));
      }
    }
  }
}

TEST(SplitVertexTest, UnsplitRestoresPapers) {
  CollabGraph g;
  const VertexId v = g.AddVertex("X", {0, 1, 2, 3, 4, 5});
  const VertexId n = g.AddVertex("N", {0, 3});
  ASSERT_TRUE(g.AddEdgePapers(v, n, {0, 3}).ok());
  iuad::Rng rng(5);
  auto v2 = SplitVertexForAugmentation(&g, v, &rng);
  ASSERT_TRUE(v2.ok());
  ASSERT_TRUE(g.MergeVertices(v, *v2).ok());
  EXPECT_EQ(g.vertex(v).papers, (std::vector<int>{0, 1, 2, 3, 4, 5}));
  EXPECT_EQ(g.NeighborsOf(v).at(n), (std::vector<int>{0, 3}));
  EXPECT_EQ(g.num_alive(), 2);
}

TEST(SplitVertexTest, RejectsTooFewPapers) {
  CollabGraph g;
  const VertexId v = g.AddVertex("X", {0});
  iuad::Rng rng(6);
  EXPECT_FALSE(SplitVertexForAugmentation(&g, v, &rng).ok());
}

// --------------------------- Full pipeline ----------------------------------

class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    corpus_ = new data::Corpus(iuad::testing::SmallCorpus());
    IuadConfig cfg = FastConfig();
    IuadPipeline pipeline(cfg);
    auto result = pipeline.Run(corpus_->db);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    result_ = new DisambiguationResult(std::move(*result));
  }
  static void TearDownTestSuite() {
    delete result_;
    delete corpus_;
    result_ = nullptr;
    corpus_ = nullptr;
  }

  static IuadConfig FastConfig() {
    IuadConfig cfg;
    cfg.word2vec.dim = 16;
    cfg.word2vec.epochs = 2;
    cfg.max_split_vertices = 50;
    return cfg;
  }

  static data::Corpus* corpus_;
  static DisambiguationResult* result_;
};
data::Corpus* PipelineTest::corpus_ = nullptr;
DisambiguationResult* PipelineTest::result_ = nullptr;

TEST_F(PipelineTest, ProducesFittedModelAndStats) {
  EXPECT_NE(result_->model, nullptr);
  EXPECT_TRUE(result_->model->fitted());
  EXPECT_GT(result_->gcn_stats.candidate_pairs, 0);
  EXPECT_GT(result_->gcn_stats.training_pairs, 0);
  EXPECT_GT(result_->gcn_stats.augmented_pairs, 0);
  EXPECT_GT(result_->scn_stats.num_scrs, 0);
  EXPECT_GT(result_->gcn_stats.recovered_edges, 0);
}

TEST_F(PipelineTest, EveryOccurrenceRemainsAttributed) {
  for (const auto& p : corpus_->db.papers()) {
    for (const auto& name : p.author_names) {
      const VertexId v = result_->occurrences.Lookup(p.id, name);
      ASSERT_GE(v, 0);
      ASSERT_TRUE(result_->graph.alive(v));
      EXPECT_EQ(result_->graph.NameOf(v), name);
    }
  }
}

TEST_F(PipelineTest, GcnMergedSomeVertices) {
  EXPECT_GT(result_->gcn_stats.merges, 0);
}

TEST_F(PipelineTest, RecoveredRelationsMakeBylinesAdjacent) {
  // Line 16: after recovery every co-author pair of every paper is an edge.
  for (int pid = 0; pid < corpus_->db.num_papers(); pid += 37) {
    const auto& p = corpus_->db.paper(pid);
    for (size_t i = 0; i < p.author_names.size(); ++i) {
      const VertexId vi = result_->occurrences.Lookup(pid, p.author_names[i]);
      for (size_t j = i + 1; j < p.author_names.size(); ++j) {
        const VertexId vj =
            result_->occurrences.Lookup(pid, p.author_names[j]);
        if (vi == vj) continue;
        EXPECT_TRUE(result_->graph.NeighborsOf(vi).count(vj) > 0)
            << "paper " << pid;
      }
    }
  }
}

TEST_F(PipelineTest, GcnImprovesRecallAtHighPrecision) {
  // The Table IV claim: stage 2 lifts recall sharply while precision barely
  // moves. Asserted as ordering, not absolute numbers.
  IuadPipeline pipeline(FastConfig());
  auto scn_only = pipeline.RunScnOnly(corpus_->db);
  ASSERT_TRUE(scn_only.ok());

  const auto names = corpus_->TestNames(2);
  ASSERT_GT(names.size(), 3u);
  const auto scn_metrics =
      eval::EvaluateOccurrences(corpus_->db, scn_only->occurrences, names);
  const auto gcn_metrics =
      eval::EvaluateOccurrences(corpus_->db, result_->occurrences, names);

  EXPECT_GT(scn_metrics.precision, 0.9);            // stage-1 guarantee
  EXPECT_GT(gcn_metrics.recall, scn_metrics.recall + 0.05);
  EXPECT_GT(gcn_metrics.f1, scn_metrics.f1);
  EXPECT_GT(gcn_metrics.precision, 0.6);            // no precision collapse
}

TEST_F(PipelineTest, DeterministicAcrossRuns) {
  IuadPipeline pipeline(FastConfig());
  auto again = pipeline.Run(corpus_->db);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->gcn_stats.merges, result_->gcn_stats.merges);
  EXPECT_EQ(again->gcn_stats.candidate_pairs,
            result_->gcn_stats.candidate_pairs);
  EXPECT_EQ(again->graph.num_alive(), result_->graph.num_alive());
}

TEST_F(PipelineTest, DeltaControlsMergeAggressiveness) {
  IuadConfig strict = FastConfig();
  strict.delta = 50.0;  // essentially never merge
  auto r_strict = IuadPipeline(strict).Run(corpus_->db);
  ASSERT_TRUE(r_strict.ok());
  EXPECT_LT(r_strict->gcn_stats.merges, result_->gcn_stats.merges);

  IuadConfig lax = FastConfig();
  lax.delta = -50.0;  // merge almost everything scored
  auto r_lax = IuadPipeline(lax).Run(corpus_->db);
  ASSERT_TRUE(r_lax.ok());
  EXPECT_GT(r_lax->gcn_stats.merges, result_->gcn_stats.merges);
}

TEST(GcnBuilderTest, NoCandidatePairsLeavesGraphUnchanged) {
  // A corpus where every name is unique: GCN has nothing to merge and no
  // model to fit, but relation recovery must still run.
  data::PaperDatabase db;
  db.AddPaper(iuad::testing::MakePaper({"A", "B"}));
  db.AddPaper(iuad::testing::MakePaper({"A", "B"}));
  db.AddPaper(iuad::testing::MakePaper({"C", "D"}));
  IuadConfig cfg;
  cfg.vertex_splitting = false;  // would otherwise synthesize same-name pairs
  IuadPipeline pipeline(cfg);
  auto r = pipeline.Run(db);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->model, nullptr);
  EXPECT_EQ(r->gcn_stats.merges, 0);
  // C-D edge recovered even though (C,D) is not an SCR.
  const VertexId c = r->occurrences.Lookup(2, "C");
  const VertexId d = r->occurrences.Lookup(2, "D");
  ASSERT_GE(c, 0);
  ASSERT_GE(d, 0);
  EXPECT_TRUE(r->graph.NeighborsOf(c).count(d) > 0);
}

TEST(GcnBuilderTest, SamplingRateSweepStillMerges) {
  auto corpus = iuad::testing::SmallCorpus(21);
  for (double rate : {0.05, 0.5, 1.0}) {
    IuadConfig cfg;
    cfg.word2vec.dim = 8;
    cfg.word2vec.epochs = 1;
    cfg.sample_rate = rate;
    cfg.max_split_vertices = 30;
    auto r = IuadPipeline(cfg).Run(corpus.db);
    ASSERT_TRUE(r.ok()) << "rate=" << rate;
    EXPECT_GT(r->gcn_stats.merges, 0) << "rate=" << rate;
  }
}

TEST(GcnBuilderTest, VertexSplittingOffStillWorks) {
  auto corpus = iuad::testing::SmallCorpus(22);
  IuadConfig cfg;
  cfg.word2vec.dim = 8;
  cfg.word2vec.epochs = 1;
  cfg.vertex_splitting = false;
  auto r = IuadPipeline(cfg).Run(corpus.db);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->gcn_stats.augmented_pairs, 0);
  EXPECT_NE(r->model, nullptr);
}


TEST(GcnBuilderTest, SemiSupervisedOracleSeedsEm) {
  // The paper's Sec. VII future work: a label oracle seeds the EM initial
  // responsibilities. Mechanism check: an all-unmatched oracle must starve
  // the matched component (smaller fitted prior, no more merges than the
  // unsupervised fit), and an abstaining oracle must change nothing.
  auto corpus = iuad::testing::SmallCorpus(51);
  IuadConfig cfg;
  cfg.word2vec.dim = 8;
  cfg.word2vec.epochs = 1;
  auto unsupervised = IuadPipeline(cfg).Run(corpus.db);
  ASSERT_TRUE(unsupervised.ok());
  ASSERT_NE(unsupervised->model, nullptr);

  IuadConfig all_unmatched = cfg;
  all_unmatched.pair_label_oracle = [](const CollabGraph&, VertexId,
                                       VertexId) { return 0; };
  auto pessimist = IuadPipeline(all_unmatched).Run(corpus.db);
  ASSERT_TRUE(pessimist.ok());
  ASSERT_NE(pessimist->model, nullptr);
  EXPECT_LT(pessimist->model->prior_matched(),
            unsupervised->model->prior_matched());
  EXPECT_LE(pessimist->gcn_stats.merges, unsupervised->gcn_stats.merges);

  IuadConfig abstaining = cfg;
  abstaining.pair_label_oracle = [](const CollabGraph&, VertexId, VertexId) {
    return -1;
  };
  auto neutral = IuadPipeline(abstaining).Run(corpus.db);
  ASSERT_TRUE(neutral.ok());
  EXPECT_EQ(neutral->gcn_stats.merges, unsupervised->gcn_stats.merges);
  EXPECT_DOUBLE_EQ(neutral->model->prior_matched(),
                   unsupervised->model->prior_matched());
}

}  // namespace
}  // namespace iuad::core
