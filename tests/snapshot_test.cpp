/// Snapshot persistence (src/io): the round-trip contract is that a
/// reloaded DisambiguationResult is indistinguishable from the one that was
/// saved — same graph, same attribution, same fitted parameters, and (the
/// property that matters for serving) byte-identical incremental
/// assignments for any held-out paper stream. Plus the rejection paths:
/// corruption, foreign files, unknown versions, wrong corpus.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "core/incremental.h"
#include "core/pipeline.h"
#include "io/snapshot.h"
#include "testing_utils.h"

namespace iuad::io {
namespace {

core::IuadConfig FastConfig() {
  core::IuadConfig cfg;
  cfg.word2vec.dim = 16;
  cfg.word2vec.epochs = 2;
  cfg.max_split_vertices = 50;
  return cfg;
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

uint64_t Fnv1a(const void* data, size_t n) {
  uint64_t h = 1469598103934665603ULL;
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

/// Pipeline + holdout fixture shared by the round-trip tests.
struct Fitted {
  data::PaperDatabase history;
  std::vector<data::Paper> stream;
  core::DisambiguationResult result;
  core::IuadConfig config;
};

Fitted FitOn(uint64_t seed, int holdout = 40) {
  Fitted f;
  auto corpus = iuad::testing::SmallCorpus(seed);
  auto [history, stream] = corpus.db.HoldOutLatest(holdout);
  f.history = std::move(history);
  f.stream = std::move(stream);
  f.config = FastConfig();
  auto result = core::IuadPipeline(f.config).Run(f.history);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  f.result = std::move(*result);
  return f;
}

/// Ingests `stream` and returns the flat assignment trace.
std::vector<core::IncrementalAssignment> IngestAll(
    data::PaperDatabase* db, core::DisambiguationResult* result,
    const core::IuadConfig& config, const std::vector<data::Paper>& stream) {
  core::IncrementalDisambiguator inc(db, result, config);
  std::vector<core::IncrementalAssignment> trace;
  for (const auto& paper : stream) {
    auto r = inc.AddPaper(paper);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    if (r.ok()) trace.insert(trace.end(), r->begin(), r->end());
  }
  return trace;
}

void ExpectSameGraph(const graph::CollabGraph& a, const graph::CollabGraph& b) {
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  EXPECT_EQ(a.num_alive(), b.num_alive());
  EXPECT_EQ(a.num_edges(), b.num_edges());
  for (graph::VertexId v = 0; v < a.num_vertices(); ++v) {
    EXPECT_EQ(a.NameOf(v), b.NameOf(v));
    EXPECT_EQ(a.vertex(v).alive, b.vertex(v).alive);
    EXPECT_EQ(a.vertex(v).papers, b.vertex(v).papers);
  }
  const auto ea = a.Edges(), eb = b.Edges();
  ASSERT_EQ(ea.size(), eb.size());
  for (size_t i = 0; i < ea.size(); ++i) {
    EXPECT_EQ(ea[i].u, eb[i].u);
    EXPECT_EQ(ea[i].v, eb[i].v);
    EXPECT_EQ(ea[i].papers, eb[i].papers);
  }
  EXPECT_EQ(a.Names(), b.Names());
}

TEST(SnapshotTest, RoundTripPreservesStateExactly) {
  Fitted f = FitOn(41);
  const std::string path = TempPath("roundtrip.snap");
  ASSERT_TRUE(SaveSnapshot(path, f.history, f.result, f.config).ok());

  auto loaded = LoadSnapshot(path, f.history);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  ExpectSameGraph(f.result.graph, loaded->result.graph);
  // Attribution: every occurrence resolves identically.
  for (const auto& p : f.history.papers()) {
    for (const auto& name : p.author_names) {
      EXPECT_EQ(f.result.occurrences.Lookup(p.id, name),
                loaded->result.occurrences.Lookup(p.id, name));
    }
  }
  // Fitted model: parameter dumps are textual but exhaustive.
  ASSERT_TRUE(loaded->result.model != nullptr);
  EXPECT_EQ(f.result.model->ToString(), loaded->result.model->ToString());
  EXPECT_EQ(f.result.model->prior_matched(),
            loaded->result.model->prior_matched());
  // Embeddings: same vocabulary, bit-identical vectors.
  const auto& va = f.result.embeddings.vocabulary();
  const auto& vb = loaded->result.embeddings.vocabulary();
  ASSERT_EQ(va.size(), vb.size());
  for (int id = 0; id < va.size(); ++id) {
    EXPECT_EQ(va.WordOf(id), vb.WordOf(id));
    EXPECT_EQ(va.CountOf(id), vb.CountOf(id));
    const text::Vec* x = f.result.embeddings.VectorOf(va.WordOf(id));
    const text::Vec* y = loaded->result.embeddings.VectorOf(va.WordOf(id));
    ASSERT_TRUE(x != nullptr && y != nullptr);
    EXPECT_EQ(*x, *y);
  }
  // Config round trip (spot checks; the oracle is documented as dropped).
  EXPECT_EQ(loaded->config.eta, f.config.eta);
  EXPECT_EQ(loaded->config.word2vec.dim, f.config.word2vec.dim);
  EXPECT_EQ(loaded->config.seed, f.config.seed);
  EXPECT_EQ(loaded->config.incremental_refresh_interval,
            f.config.incremental_refresh_interval);
  // Stats survive too (the serve CLI reports them).
  EXPECT_EQ(loaded->result.scn_stats.num_scrs, f.result.scn_stats.num_scrs);
  EXPECT_EQ(loaded->result.gcn_stats.merges, f.result.gcn_stats.merges);

  std::remove(path.c_str());
}

/// The acceptance property: save → load → AddPaper over a held-out stream
/// is byte-identical to ingesting into the never-serialized result, across
/// random corpora.
TEST(SnapshotTest, PropertyReloadedIngestionMatchesInMemory) {
  for (uint64_t seed : {3u, 17u, 90u}) {
    SCOPED_TRACE("corpus seed " + std::to_string(seed));
    Fitted f = FitOn(seed);
    const std::string path =
        TempPath("property" + std::to_string(seed) + ".snap");
    ASSERT_TRUE(SaveSnapshot(path, f.history, f.result, f.config).ok());
    auto loaded = LoadSnapshot(path, f.history);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

    data::PaperDatabase db_mem = f.history;
    data::PaperDatabase db_load = f.history;
    const auto mem = IngestAll(&db_mem, &f.result, f.config, f.stream);
    const auto rel =
        IngestAll(&db_load, &loaded->result, loaded->config, f.stream);

    ASSERT_EQ(mem.size(), rel.size());
    for (size_t i = 0; i < mem.size(); ++i) {
      EXPECT_EQ(mem[i].name, rel[i].name);
      EXPECT_EQ(mem[i].vertex, rel[i].vertex);
      EXPECT_EQ(mem[i].created_new, rel[i].created_new);
      EXPECT_EQ(mem[i].best_score, rel[i].best_score);  // bitwise-equal double
      EXPECT_EQ(mem[i].num_candidates, rel[i].num_candidates);
    }
    ExpectSameGraph(f.result.graph, loaded->result.graph);
    std::remove(path.c_str());
  }
}

TEST(SnapshotTest, ScnOnlyResultRoundTripsWithoutModel) {
  auto db = iuad::testing::Fig2Database();
  core::IuadConfig cfg = FastConfig();
  auto result = core::IuadPipeline(cfg).RunScnOnly(db);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->model == nullptr);
  const std::string path = TempPath("scn_only.snap");
  ASSERT_TRUE(SaveSnapshot(path, db, *result, cfg).ok());
  auto loaded = LoadSnapshot(path, db);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded->result.model == nullptr);
  EXPECT_FALSE(loaded->result.embeddings.trained());
  ExpectSameGraph(result->graph, loaded->result.graph);
  std::remove(path.c_str());
}

class SnapshotRejectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = iuad::testing::Fig2Database();
    cfg_ = FastConfig();
    auto result = core::IuadPipeline(cfg_).Run(db_);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    path_ = TempPath("rejection.snap");
    ASSERT_TRUE(SaveSnapshot(path_, db_, *result, cfg_).ok());
    bytes_ = ReadFileBytes(path_);
    ASSERT_GT(bytes_.size(), 64u);
  }

  void TearDown() override { std::remove(path_.c_str()); }

  /// Rewrites the stored format version and re-stamps the header checksum
  /// (so the version check, not the checksum, is what trips).
  void PatchVersion(uint32_t version) {
    std::memcpy(&bytes_[8], &version, sizeof(version));
    const uint32_t check = static_cast<uint32_t>(Fnv1a(bytes_.data(), 36));
    std::memcpy(&bytes_[36], &check, sizeof(check));
    WriteFileBytes(path_, bytes_);
  }

  data::PaperDatabase db_;
  core::IuadConfig cfg_;
  std::string path_;
  std::string bytes_;
};

TEST_F(SnapshotRejectionTest, CorruptedHeaderIsRejected) {
  std::string corrupt = bytes_;
  corrupt[20] ^= 0x5a;  // inside the header, after the magic
  WriteFileBytes(path_, corrupt);
  auto r = LoadSnapshot(path_, db_);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

TEST_F(SnapshotRejectionTest, CorruptedPayloadIsRejected) {
  std::string corrupt = bytes_;
  corrupt[corrupt.size() / 2] ^= 0x5a;
  WriteFileBytes(path_, corrupt);
  auto r = LoadSnapshot(path_, db_);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

TEST_F(SnapshotRejectionTest, TruncatedFileIsRejected) {
  WriteFileBytes(path_, bytes_.substr(0, bytes_.size() - 17));
  auto r = LoadSnapshot(path_, db_);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

TEST_F(SnapshotRejectionTest, ForeignFileIsRejected) {
  WriteFileBytes(path_, "not a snapshot at all, sorry");
  auto r = LoadSnapshot(path_, db_);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(SnapshotRejectionTest, VersionMismatchIsRejected) {
  PatchVersion(kSnapshotFormatVersion + 7);
  auto r = LoadSnapshot(path_, db_);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(SnapshotRejectionTest, WrongCorpusIsRejected) {
  // Same shape, one extra paper: a different corpus fingerprint.
  data::PaperDatabase other = db_;
  other.AddPaper(iuad::testing::MakePaper({"x", "y"}, "unrelated work"));
  auto r = LoadSnapshot(path_, other);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(SnapshotRejectionTest, MissingFileIsIoError) {
  auto r = LoadSnapshot(TempPath("no_such.snap"), db_);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

// --------------------------- Format v2 (sharded sections) -------------------

/// Byte offsets of every v2 section, recovered from the on-disk table:
/// {offset, size} per section, in table order.
std::vector<std::pair<size_t, size_t>> SectionSpansOf(
    const std::string& bytes) {
  uint32_t num_sections = 0;
  std::memcpy(&num_sections, bytes.data() + 40, sizeof(num_sections));
  std::vector<std::pair<size_t, size_t>> spans;
  size_t at = 40 + 4 + static_cast<size_t>(num_sections) * 20;  // past table
  for (uint32_t i = 0; i < num_sections; ++i) {
    uint64_t size = 0;
    std::memcpy(&size, bytes.data() + 40 + 4 + i * 20 + 4, sizeof(size));
    spans.emplace_back(at, static_cast<size_t>(size));
    at += size;
  }
  return spans;
}

TEST(SnapshotV2Test, MultiShardSectionsRoundTripExactly) {
  Fitted f = FitOn(50);
  f.config.num_shards = 3;  // 1 common + 3 shard sections
  const std::string path = TempPath("v2_sharded.snap");
  ASSERT_TRUE(SaveSnapshot(path, f.history, f.result, f.config).ok());
  const std::string bytes = ReadFileBytes(path);
  uint32_t version = 0;
  std::memcpy(&version, bytes.data() + 8, sizeof(version));
  EXPECT_EQ(version, kSnapshotFormatVersion);
  EXPECT_EQ(SectionSpansOf(bytes).size(), 4u);

  auto loaded = LoadSnapshot(path, f.history);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->config.num_shards, 3);
  ExpectSameGraph(f.result.graph, loaded->result.graph);
  for (const auto& p : f.history.papers()) {
    for (const auto& name : p.author_names) {
      EXPECT_EQ(f.result.occurrences.Lookup(p.id, name),
                loaded->result.occurrences.Lookup(p.id, name));
    }
  }
  ASSERT_TRUE(loaded->result.model != nullptr);
  EXPECT_EQ(f.result.model->ToString(), loaded->result.model->ToString());

  // The sharded sections feed the same byte-identical ingestion contract.
  data::PaperDatabase db_mem = f.history;
  data::PaperDatabase db_load = f.history;
  const auto mem = IngestAll(&db_mem, &f.result, f.config, f.stream);
  const auto rel =
      IngestAll(&db_load, &loaded->result, loaded->config, f.stream);
  ASSERT_EQ(mem.size(), rel.size());
  for (size_t i = 0; i < mem.size(); ++i) {
    EXPECT_EQ(mem[i].vertex, rel[i].vertex);
    EXPECT_EQ(mem[i].best_score, rel[i].best_score);  // bitwise-equal double
  }
  std::remove(path.c_str());
}

TEST(SnapshotV2Test, CorruptingAnySingleSectionIsDetectedAndNamed) {
  Fitted f = FitOn(51, 10);
  f.config.num_shards = 3;
  const std::string path = TempPath("v2_corrupt.snap");
  ASSERT_TRUE(SaveSnapshot(path, f.history, f.result, f.config).ok());
  const std::string pristine = ReadFileBytes(path);
  const auto spans = SectionSpansOf(pristine);
  ASSERT_EQ(spans.size(), 4u);
  for (size_t i = 0; i < spans.size(); ++i) {
    SCOPED_TRACE("section " + std::to_string(i));
    ASSERT_GT(spans[i].second, 0u);
    std::string corrupt = pristine;
    corrupt[spans[i].first + spans[i].second / 2] ^= 0x5a;
    WriteFileBytes(path, corrupt);
    auto r = LoadSnapshot(path, f.history);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kIoError);
    // The one bad section is identified by index; its neighbors verified
    // clean — corruption never poisons the rest of the file.
    EXPECT_NE(r.status().message().find("section " + std::to_string(i)),
              std::string::npos)
        << r.status().ToString();
    EXPECT_NE(r.status().message().find("remaining sections verified clean"),
              std::string::npos);
  }
  // And the pristine bytes still load after all that.
  WriteFileBytes(path, pristine);
  EXPECT_TRUE(LoadSnapshot(path, f.history).ok());
  std::remove(path.c_str());
}

TEST(SnapshotV2Test, CorruptedSectionTableIsRejected) {
  Fitted f = FitOn(52, 10);
  const std::string path = TempPath("v2_table.snap");
  ASSERT_TRUE(SaveSnapshot(path, f.history, f.result, f.config).ok());
  std::string corrupt = ReadFileBytes(path);
  corrupt[44] ^= 0x5a;  // inside the section table (first entry's kind)
  WriteFileBytes(path, corrupt);
  auto r = LoadSnapshot(path, f.history);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
  EXPECT_NE(r.status().message().find("table"), std::string::npos);
  std::remove(path.c_str());
}

TEST(SnapshotV2Test, LegacyV1FilesStillLoadAndIngestIdentically) {
  Fitted f = FitOn(53);
  const std::string path = TempPath("legacy_v1.snap");
  SnapshotWriteOptions v1;
  v1.format_version = kSnapshotFormatV1;
  ASSERT_TRUE(SaveSnapshot(path, f.history, f.result, f.config, v1).ok());
  const std::string bytes = ReadFileBytes(path);
  uint32_t version = 0;
  std::memcpy(&version, bytes.data() + 8, sizeof(version));
  ASSERT_EQ(version, kSnapshotFormatV1);

  auto loaded = LoadSnapshot(path, f.history);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  // Fields the v1 format predates fall back to their defaults.
  EXPECT_EQ(loaded->config.num_shards, 1);
  ExpectSameGraph(f.result.graph, loaded->result.graph);
  data::PaperDatabase db_mem = f.history;
  data::PaperDatabase db_load = f.history;
  const auto mem = IngestAll(&db_mem, &f.result, f.config, f.stream);
  const auto rel =
      IngestAll(&db_load, &loaded->result, loaded->config, f.stream);
  ASSERT_EQ(mem.size(), rel.size());
  for (size_t i = 0; i < mem.size(); ++i) {
    EXPECT_EQ(mem[i].vertex, rel[i].vertex);
    EXPECT_EQ(mem[i].best_score, rel[i].best_score);
  }
  std::remove(path.c_str());
}

TEST(SnapshotV2Test, LegacyV2FilesStillLoadAndIngestIdentically) {
  // v2 predates the interned name table: vertex names are inline strings.
  // A v2 file must load into the interner-backed graph and then ingest a
  // held-out stream byte-identically to the never-serialized result.
  Fitted f = FitOn(55);
  f.config.num_shards = 2;  // exercise the sharded sections too
  const std::string path = TempPath("legacy_v2.snap");
  SnapshotWriteOptions v2;
  v2.format_version = kSnapshotFormatV2;
  ASSERT_TRUE(SaveSnapshot(path, f.history, f.result, f.config, v2).ok());
  const std::string bytes = ReadFileBytes(path);
  uint32_t version = 0;
  std::memcpy(&version, bytes.data() + 8, sizeof(version));
  ASSERT_EQ(version, kSnapshotFormatV2);

  auto loaded = LoadSnapshot(path, f.history);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->config.num_shards, 2);
  ExpectSameGraph(f.result.graph, loaded->result.graph);
  data::PaperDatabase db_mem = f.history;
  data::PaperDatabase db_load = f.history;
  const auto mem = IngestAll(&db_mem, &f.result, f.config, f.stream);
  const auto rel =
      IngestAll(&db_load, &loaded->result, loaded->config, f.stream);
  ASSERT_EQ(mem.size(), rel.size());
  for (size_t i = 0; i < mem.size(); ++i) {
    EXPECT_EQ(mem[i].vertex, rel[i].vertex);
    EXPECT_EQ(mem[i].best_score, rel[i].best_score);
  }
  std::remove(path.c_str());
}

TEST(SnapshotV2Test, UnsupportedWriteVersionIsRejected) {
  Fitted f = FitOn(54, 5);
  SnapshotWriteOptions opts;
  opts.format_version = 99;
  auto st = SaveSnapshot(TempPath("never.snap"), f.history, f.result,
                         f.config, opts);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace iuad::io
