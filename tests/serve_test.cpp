/// serve::IngestService: the concurrency contract. Ingestion through the
/// service — at any producer count, through either Submit or SubmitAt —
/// must equal sequential IncrementalDisambiguator::AddPaper calls in
/// sequence order, the admission window must bound the queue without
/// deadlocking, and the read APIs must be safe while the applier mutates
/// the graph.

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "core/incremental.h"
#include "core/pipeline.h"
#include "serve/ingest_service.h"
#include "testing_utils.h"

namespace iuad::serve {
namespace {

core::IuadConfig FastConfig() {
  core::IuadConfig cfg;
  cfg.word2vec.dim = 16;
  cfg.word2vec.epochs = 2;
  cfg.max_split_vertices = 50;
  return cfg;
}

/// A fresh fitted state. The pipeline is deterministic (pinned by
/// determinism_test), so repeated calls give interchangeable baselines.
struct Fixture {
  data::PaperDatabase history;
  std::vector<data::Paper> stream;
  core::DisambiguationResult result;
};

Fixture MakeFixture(uint64_t seed, int holdout, const core::IuadConfig& cfg) {
  Fixture f;
  auto corpus = iuad::testing::SmallCorpus(seed);
  auto [history, stream] = corpus.db.HoldOutLatest(holdout);
  f.history = std::move(history);
  f.stream = std::move(stream);
  auto result = core::IuadPipeline(cfg).Run(f.history);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  f.result = std::move(*result);
  return f;
}

std::string TraceOf(const std::vector<core::IncrementalAssignment>& as) {
  std::string t;
  for (const auto& a : as) {
    t += a.name + ":" + std::to_string(a.vertex) +
         (a.created_new ? "*" : "") + ";";
  }
  return t;
}

/// Sequential ground truth: one AddPaper per stream paper, in order.
std::vector<std::string> SequentialTraces(const core::IuadConfig& cfg,
                                          uint64_t seed, int holdout) {
  Fixture f = MakeFixture(seed, holdout, cfg);
  core::IncrementalDisambiguator inc(&f.history, &f.result, cfg);
  std::vector<std::string> traces;
  for (const auto& paper : f.stream) {
    auto r = inc.AddPaper(paper);
    EXPECT_TRUE(r.ok());
    traces.push_back(TraceOf(*r));
  }
  return traces;
}

/// Service run: `producers` threads race over the stream with SubmitAt.
std::vector<std::string> ServiceTraces(core::IuadConfig cfg, uint64_t seed,
                                       int holdout, int producers) {
  Fixture f = MakeFixture(seed, holdout, cfg);
  std::vector<std::future<IngestService::Assignments>> futures(
      f.stream.size());
  IngestService service(&f.history, &f.result, cfg);
  std::atomic<size_t> next{0};
  auto producer = [&] {
    for (size_t i = next.fetch_add(1); i < f.stream.size();
         i = next.fetch_add(1)) {
      futures[i] = service.SubmitAt(i, f.stream[i]);
    }
  };
  std::vector<std::thread> threads;
  for (int t = 1; t < producers; ++t) threads.emplace_back(producer);
  producer();
  for (auto& t : threads) t.join();
  service.Stop();
  std::vector<std::string> traces;
  for (auto& fut : futures) {
    auto r = fut.get();
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    traces.push_back(r.ok() ? TraceOf(*r) : "FAILED");
  }
  return traces;
}

TEST(IngestServiceTest, MatchesSequentialAtAnyProducerCount) {
  const core::IuadConfig cfg = FastConfig();
  const auto sequential = SequentialTraces(cfg, 33, 60);
  ASSERT_EQ(sequential.size(), 60u);
  EXPECT_EQ(ServiceTraces(cfg, 33, 60, 1), sequential);
  EXPECT_EQ(ServiceTraces(cfg, 33, 60, 4), sequential);
}

TEST(IngestServiceTest, TinyAdmissionWindowStaysLiveAndDeterministic) {
  core::IuadConfig cfg = FastConfig();
  cfg.ingest_queue_capacity = 1;  // every out-of-turn producer must block
  cfg.ingest_refresh_window = 3;
  const auto sequential = SequentialTraces(cfg, 34, 40);
  EXPECT_EQ(ServiceTraces(cfg, 34, 40, 4), sequential);
}

TEST(IngestServiceTest, SubmitAssignsArrivalOrderSequences) {
  core::IuadConfig cfg = FastConfig();
  Fixture f = MakeFixture(35, 30, cfg);
  const auto sequential = SequentialTraces(cfg, 35, 30);
  IngestService service(&f.history, &f.result, cfg);
  std::vector<std::future<IngestService::Assignments>> futures;
  for (const auto& paper : f.stream) futures.push_back(service.Submit(paper));
  service.Drain();
  for (size_t i = 0; i < futures.size(); ++i) {
    auto r = futures[i].get();
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(TraceOf(*r), sequential[i]);
  }
  const auto stats = service.Stats();
  EXPECT_EQ(stats.papers_applied, static_cast<int64_t>(f.stream.size()));
  EXPECT_EQ(stats.queued_now, 0);
  service.Stop();
}

TEST(IngestServiceTest, SubmitBatchMatchesSequentialAndStaysContiguous) {
  core::IuadConfig cfg = FastConfig();
  cfg.ingest_queue_capacity = 4;  // the batch must block-and-drain mid-way
  const auto sequential = SequentialTraces(cfg, 33, 60);
  Fixture f = MakeFixture(33, 60, cfg);
  IngestService service(&f.history, &f.result, cfg);
  serve::Frontend& frontend = service;  // through the interface
  // Two batches + a trailing single Submit: the second batch's range is
  // reserved after the first, the single lands after both.
  std::vector<data::Paper> first(f.stream.begin(), f.stream.begin() + 40);
  std::vector<data::Paper> second(f.stream.begin() + 40, f.stream.end() - 1);
  auto futures = frontend.SubmitBatch(std::move(first));
  auto more = frontend.SubmitBatch(std::move(second));
  for (auto& fut : more) futures.push_back(std::move(fut));
  futures.push_back(frontend.Submit(f.stream.back()));
  ASSERT_EQ(futures.size(), f.stream.size());
  service.Drain();
  for (size_t i = 0; i < futures.size(); ++i) {
    auto r = futures[i].get();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(TraceOf(*r), sequential[i]);
  }
  EXPECT_TRUE(frontend.SubmitBatch({}).empty());
  service.Stop();
}

TEST(IngestServiceTest, ReadsAreSafeDuringIngestion) {
  core::IuadConfig cfg = FastConfig();
  cfg.ingest_refresh_window = 5;  // republish often to exercise epoch swaps
  Fixture f = MakeFixture(36, 60, cfg);
  // A name guaranteed to exist: the first history byline.
  const std::string name = f.history.paper(0).author_names[0];
  IngestService service(&f.history, &f.result, cfg);

  std::atomic<bool> done{false};
  std::atomic<int64_t> reads{0};
  std::thread reader([&] {
    while (!done.load()) {
      const auto records = service.AuthorsByName(name);
      for (const auto& rec : records) {
        // Each call reads the epoch current at that instant; a republish
        // may land between the two calls. Incremental ingestion never
        // merges vertices, so an alive vertex's paper count only grows —
        // the later read must be at least the earlier one.
        EXPECT_GE(static_cast<int>(service.PublicationsOf(rec.vertex).size()),
                  rec.num_papers);
      }
      (void)service.Stats();
      ++reads;
    }
  });

  std::vector<std::future<IngestService::Assignments>> futures;
  for (const auto& paper : f.stream) futures.push_back(service.Submit(paper));
  service.Drain();
  done = true;
  reader.join();
  for (auto& fut : futures) EXPECT_TRUE(fut.get().ok());
  EXPECT_GT(reads.load(), 0);

  const auto stats = service.Stats();
  EXPECT_EQ(stats.papers_applied, static_cast<int64_t>(f.stream.size()));
  EXPECT_GE(stats.epoch, 1);
  EXPECT_EQ(stats.num_alive_vertices, f.result.graph.num_alive());
  EXPECT_EQ(stats.num_edges, f.result.graph.num_edges());
  service.Stop();
}

TEST(IngestServiceTest, HealthCountersTrackQueueAndReorderBuffer) {
  core::IuadConfig cfg = FastConfig();
  cfg.ingest_queue_capacity = 8;
  Fixture f = MakeFixture(42, 10, cfg);
  IngestService service(&f.history, &f.result, cfg);
  {
    const auto stats = service.Stats();
    EXPECT_EQ(stats.epoch, 0);  // the pre-ingestion view
    EXPECT_EQ(stats.papers_applied, 0);
    EXPECT_EQ(stats.queued_now, 0);
    EXPECT_EQ(stats.reorder_held, 0);
    EXPECT_EQ(stats.queue_capacity, 8);
  }
  // Two papers stuck behind the sequence-0 hole: both queued, both held.
  auto h1 = service.SubmitAt(1, f.stream[0]);
  auto h2 = service.SubmitAt(2, f.stream[1]);
  {
    const auto stats = service.Stats();
    EXPECT_EQ(stats.queued_now, 2);
    EXPECT_EQ(stats.reorder_held, 2);
  }
  // Filling the hole drains everything; a drain also publishes.
  auto h0 = service.SubmitAt(0, f.stream[2]);
  service.Drain();
  EXPECT_TRUE(h0.get().ok());
  EXPECT_TRUE(h1.get().ok());
  EXPECT_TRUE(h2.get().ok());
  {
    const auto stats = service.Stats();
    EXPECT_EQ(stats.papers_applied, 3);
    EXPECT_EQ(stats.queued_now, 0);
    EXPECT_EQ(stats.reorder_held, 0);
    EXPECT_GE(stats.epoch, 1);  // the drain republished the view
  }
  service.Stop();
}

TEST(IngestServiceTest, DuplicateSequenceFailsThatSubmissionOnly) {
  core::IuadConfig cfg = FastConfig();
  Fixture f = MakeFixture(37, 10, cfg);
  IngestService service(&f.history, &f.result, cfg);
  auto ok1 = service.SubmitAt(0, f.stream[0]);
  auto dup = service.SubmitAt(0, f.stream[1]);
  auto r_dup = dup.get();
  ASSERT_FALSE(r_dup.ok());
  EXPECT_EQ(r_dup.status().code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(ok1.get().ok());
  service.Stop();
}

TEST(IngestServiceTest, StopFailsStrandedSubmissionsAndRejectsNewOnes) {
  core::IuadConfig cfg = FastConfig();
  Fixture f = MakeFixture(38, 10, cfg);
  IngestService service(&f.history, &f.result, cfg);
  // Sequence 1 can never apply: sequence 0 is a hole we never fill.
  auto stranded = service.SubmitAt(1, f.stream[0]);
  service.Stop();
  auto r = stranded.get();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
  auto late = service.Submit(f.stream[1]);
  auto r_late = late.get();
  ASSERT_FALSE(r_late.ok());
  EXPECT_EQ(r_late.status().code(), StatusCode::kFailedPrecondition);
}

TEST(IngestServiceTest, BadPaperFailsItsFutureWithoutWedgingTheQueue) {
  core::IuadConfig cfg = FastConfig();
  Fixture f = MakeFixture(39, 10, cfg);
  IngestService service(&f.history, &f.result, cfg);
  auto good_before = service.Submit(f.stream[0]);
  auto bad = service.Submit(data::Paper{});  // empty byline -> InvalidArgument
  auto good_after = service.Submit(f.stream[1]);
  service.Drain();
  EXPECT_TRUE(good_before.get().ok());
  auto r_bad = bad.get();
  ASSERT_FALSE(r_bad.ok());
  EXPECT_EQ(r_bad.status().code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(good_after.get().ok());
  EXPECT_EQ(service.Stats().papers_applied, 2);
  service.Stop();
}

}  // namespace
}  // namespace iuad::serve
