#include <gtest/gtest.h>

#include "core/occurrence_index.h"
#include "eval/evaluator.h"
#include "eval/metrics.h"
#include "eval/table_printer.h"
#include "testing_utils.h"
#include "util/rng.h"

namespace iuad::eval {
namespace {

// --------------------------- PairwiseCounts ---------------------------------

TEST(PairwiseCountsTest, HandComputedExample) {
  // truth: {0,1} same author A, {2} author B.
  // pred: all three together.
  PairCounts c = PairwiseCounts({9, 9, 9}, {0, 0, 1});
  EXPECT_EQ(c.tp, 1);  // (0,1)
  EXPECT_EQ(c.fp, 2);  // (0,2), (1,2)
  EXPECT_EQ(c.fn, 0);
  EXPECT_EQ(c.tn, 0);
}

TEST(PairwiseCountsTest, PerfectPrediction) {
  PairCounts c = PairwiseCounts({5, 5, 8, 8}, {0, 0, 1, 1});
  EXPECT_EQ(c.tp, 2);
  EXPECT_EQ(c.fp, 0);
  EXPECT_EQ(c.fn, 0);
  EXPECT_EQ(c.tn, 4);
  auto m = ToMetrics(c);
  EXPECT_DOUBLE_EQ(m.accuracy, 1.0);
  EXPECT_DOUBLE_EQ(m.precision, 1.0);
  EXPECT_DOUBLE_EQ(m.recall, 1.0);
  EXPECT_DOUBLE_EQ(m.f1, 1.0);
}

TEST(PairwiseCountsTest, AllSingletonsHaveZeroRecall) {
  PairCounts c = PairwiseCounts({0, 1, 2}, {7, 7, 7});
  EXPECT_EQ(c.tp, 0);
  EXPECT_EQ(c.fn, 3);
  auto m = ToMetrics(c);
  EXPECT_DOUBLE_EQ(m.recall, 0.0);
  EXPECT_DOUBLE_EQ(m.precision, 0.0);  // no positive predictions
  EXPECT_DOUBLE_EQ(m.f1, 0.0);
}

TEST(PairwiseCountsTest, UnknownTruthSkipped) {
  PairCounts c = PairwiseCounts({1, 1, 1}, {0, -1, 0});
  // Only the (0,2) pair is counted.
  EXPECT_EQ(c.total(), 1);
  EXPECT_EQ(c.tp, 1);
}

TEST(PairwiseCountsTest, TotalIsChooseTwo) {
  iuad::Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    const int n = 2 + static_cast<int>(rng.NextBounded(30));
    std::vector<int> pred(static_cast<size_t>(n)), truth(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      pred[static_cast<size_t>(i)] = static_cast<int>(rng.NextBounded(4));
      truth[static_cast<size_t>(i)] = static_cast<int>(rng.NextBounded(4));
    }
    PairCounts c = PairwiseCounts(pred, truth);
    EXPECT_EQ(c.total(), static_cast<int64_t>(n) * (n - 1) / 2);
  }
}

TEST(PairwiseCountsTest, EmptyAndSingleItem) {
  EXPECT_EQ(PairwiseCounts({}, {}).total(), 0);
  EXPECT_EQ(PairwiseCounts({1}, {1}).total(), 0);
  auto m = ToMetrics(PairwiseCounts({}, {}));
  EXPECT_DOUBLE_EQ(m.accuracy, 1.0);  // nothing to get wrong
}

TEST(PairCountsTest, AddAccumulates) {
  PairCounts a{1, 2, 3, 4};
  PairCounts b{10, 20, 30, 40};
  a.Add(b);
  EXPECT_EQ(a.tp, 11);
  EXPECT_EQ(a.fp, 22);
  EXPECT_EQ(a.fn, 33);
  EXPECT_EQ(a.tn, 44);
  EXPECT_EQ(a.total(), 110);
}

TEST(MetricsTest, MicroAggregationDiffersFromMacro) {
  // Name 1: tiny but perfect; name 2: large and bad. Micro is dominated by
  // name 2 — the very point of the paper's micro protocol.
  PairCounts small = PairwiseCounts({1, 1}, {0, 0});        // 1 TP
  PairCounts large = PairwiseCounts({2, 2, 2, 2, 3}, {0, 0, 1, 1, 1});
  PairCounts total = small;
  total.Add(large);
  auto micro = ToMetrics(total);
  EXPECT_LT(micro.precision, 1.0);
  EXPECT_GT(micro.precision, 0.0);
}

TEST(MetricsTest, FormatMetrics) {
  MicroMetrics m{0.8174, 0.8608, 0.8113, 0.8353};
  EXPECT_EQ(FormatMetrics(m), "A=0.8174 P=0.8608 R=0.8113 F=0.8353");
}

// --------------------------- Evaluator --------------------------------------

TEST(EvaluatorTest, TrueLabelsForName) {
  auto db = iuad::testing::Fig2Database();
  // Unlabeled corpus: all -1.
  auto labels = TrueLabelsForName(db, "b");
  ASSERT_EQ(labels.size(), db.PapersWithName("b").size());
  for (int l : labels) EXPECT_EQ(l, -1);

  data::PaperDatabase labeled;
  labeled.AddPaper(iuad::testing::MakePaper({"x", "y"}, "t", "v", 2000, {1, 5}));
  labeled.AddPaper(iuad::testing::MakePaper({"x"}, "t", "v", 2001, {2}));
  auto lx = TrueLabelsForName(labeled, "x");
  EXPECT_EQ(lx, (std::vector<int>{1, 2}));
}

TEST(EvaluatorTest, CountsForNameUsesOccurrenceIndex) {
  data::PaperDatabase db;
  db.AddPaper(iuad::testing::MakePaper({"x"}, "t", "v", 2000, {1}));
  db.AddPaper(iuad::testing::MakePaper({"x"}, "t", "v", 2001, {1}));
  db.AddPaper(iuad::testing::MakePaper({"x"}, "t", "v", 2002, {2}));
  core::OccurrenceIndex occ;
  occ.AssignIfAbsent(0, "x", 100);
  occ.AssignIfAbsent(1, "x", 100);
  occ.AssignIfAbsent(2, "x", 200);
  PairCounts c = CountsForName(db, occ, "x");
  EXPECT_EQ(c.tp, 1);
  EXPECT_EQ(c.tn, 2);
  EXPECT_EQ(c.fp, 0);
  EXPECT_EQ(c.fn, 0);
  auto metrics = EvaluateOccurrences(db, occ, {"x"});
  EXPECT_DOUBLE_EQ(metrics.accuracy, 1.0);
}

TEST(EvaluatorTest, EvaluateClustererAdapter) {
  data::PaperDatabase db;
  db.AddPaper(iuad::testing::MakePaper({"x"}, "t", "v", 2000, {1}));
  db.AddPaper(iuad::testing::MakePaper({"x"}, "t", "v", 2001, {2}));
  PairCounts total;
  auto metrics = EvaluateClusterer(
      db, [](const std::string&) { return std::vector<int>{0, 0}; }, {"x"},
      &total);
  EXPECT_EQ(total.fp, 1);
  EXPECT_DOUBLE_EQ(metrics.accuracy, 0.0);
}

// --------------------------- TablePrinter -----------------------------------

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"Algorithm", "MicroF"});
  t.AddRow({"IUAD", "0.8353"});
  t.AddRow({"A-very-long-name", "0.1"});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("| Algorithm "), std::string::npos);
  EXPECT_NE(s.find("| IUAD "), std::string::npos);
  EXPECT_NE(s.find("A-very-long-name"), std::string::npos);
  // All lines equally wide.
  size_t width = 0;
  size_t pos = 0;
  while (pos < s.size()) {
    size_t end = s.find('\n', pos);
    if (end == std::string::npos) break;
    if (width == 0) width = end - pos;
    EXPECT_EQ(end - pos, width);
    pos = end + 1;
  }
}

TEST(TablePrinterTest, ShortRowsPadded) {
  TablePrinter t({"a", "b", "c"});
  t.AddRow({"1"});
  t.AddSeparator();
  t.AddRow({"2", "3", "4"});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("| 2 | 3 | 4 |"), std::string::npos);
}

}  // namespace
}  // namespace iuad::eval
