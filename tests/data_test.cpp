#include <gtest/gtest.h>

#include <filesystem>
#include <set>
#include <unordered_set>

#include "data/corpus_generator.h"
#include "data/paper_database.h"
#include "mining/pair_miner.h"
#include "testing_utils.h"
#include "util/stats.h"
#include "util/tsv.h"

namespace iuad::data {
namespace {

// --------------------------- Paper ------------------------------------------

TEST(PaperTest, PositionOfName) {
  Paper p = iuad::testing::MakePaper({"x", "y", "z"});
  EXPECT_EQ(p.PositionOfName("y"), 1);
  EXPECT_EQ(p.PositionOfName("w"), -1);
}

TEST(PaperTest, TrueAuthorOfName) {
  Paper p = iuad::testing::MakePaper({"x", "y"}, "t", "v", 2000, {10, 20});
  EXPECT_EQ(p.TrueAuthorOfName("y"), 20);
  EXPECT_EQ(p.TrueAuthorOfName("nope"), kUnknownAuthor);
  Paper unlabeled = iuad::testing::MakePaper({"x"});
  EXPECT_EQ(unlabeled.TrueAuthorOfName("x"), kUnknownAuthor);
}

// --------------------------- PaperDatabase ----------------------------------

TEST(PaperDatabaseTest, AddAssignsDenseIdsAndIndexes) {
  PaperDatabase db;
  const int id0 = db.AddPaper(iuad::testing::MakePaper({"a", "b"}));
  const int id1 = db.AddPaper(iuad::testing::MakePaper({"b", "c"}));
  EXPECT_EQ(id0, 0);
  EXPECT_EQ(id1, 1);
  EXPECT_EQ(db.num_papers(), 2);
  EXPECT_EQ(db.PapersWithName("b"), (std::vector<int>{0, 1}));
  EXPECT_EQ(db.PapersWithName("a"), (std::vector<int>{0}));
  EXPECT_TRUE(db.PapersWithName("zz").empty());
  EXPECT_EQ(db.author_paper_pairs(), 4);
}

TEST(PaperDatabaseTest, VenueAndKeywordFrequencies) {
  PaperDatabase db;
  db.AddPaper(iuad::testing::MakePaper({"a"}, "graph kernels", "ICDE", 2019));
  db.AddPaper(iuad::testing::MakePaper({"b"}, "graph mining", "ICDE", 2020));
  db.AddPaper(iuad::testing::MakePaper({"c"}, "entity matching", "VLDB", 2021));
  EXPECT_EQ(db.VenueFrequency("ICDE"), 2);
  EXPECT_EQ(db.VenueFrequency("VLDB"), 1);
  EXPECT_EQ(db.VenueFrequency("KDD"), 0);
  EXPECT_EQ(db.KeywordFrequency("graph"), 2);
  EXPECT_EQ(db.KeywordFrequency("matching"), 1);
  EXPECT_EQ(db.KeywordFrequency("the"), 0);  // stop word never indexed
  EXPECT_EQ(db.max_year(), 2021);
}

TEST(PaperDatabaseTest, KeywordsOfCachesExtraction) {
  PaperDatabase db;
  db.AddPaper(iuad::testing::MakePaper({"a"}, "On the Mining of Graphs"));
  EXPECT_EQ(db.KeywordsOf(0), (std::vector<std::string>{"mining", "graphs"}));
}

TEST(PaperDatabaseTest, DuplicateNameInBylineIndexedOnce) {
  PaperDatabase db;
  Paper p = iuad::testing::MakePaper({"a", "a"});
  db.AddPaper(p);
  EXPECT_EQ(db.PapersWithName("a"), (std::vector<int>{0}));
}

TEST(PaperDatabaseTest, PrefixByYearFraction) {
  PaperDatabase db;
  for (int y : {2005, 2001, 2003, 2002, 2004}) {
    db.AddPaper(iuad::testing::MakePaper({"a"}, "t", "v", y));
  }
  PaperDatabase p40 = db.PrefixByYearFraction(0.4);
  EXPECT_EQ(p40.num_papers(), 2);
  std::set<int> years;
  for (const auto& p : p40.papers()) years.insert(p.year);
  EXPECT_EQ(years, (std::set<int>{2001, 2002}));
  EXPECT_EQ(db.PrefixByYearFraction(1.0).num_papers(), 5);
  EXPECT_EQ(db.PrefixByYearFraction(0.0).num_papers(), 0);
  EXPECT_EQ(db.PrefixByYearFraction(2.0).num_papers(), 5);  // clamped
}

TEST(PaperDatabaseTest, HoldOutLatest) {
  PaperDatabase db;
  for (int y : {2005, 2001, 2003, 2002, 2004}) {
    db.AddPaper(iuad::testing::MakePaper({"a"}, "t", "v", y));
  }
  auto [hist, stream] = db.HoldOutLatest(2);
  EXPECT_EQ(hist.num_papers(), 3);
  ASSERT_EQ(stream.size(), 2u);
  EXPECT_EQ(stream[0].year, 2004);
  EXPECT_EQ(stream[1].year, 2005);
  auto [all_hist, empty_stream] = db.HoldOutLatest(0);
  EXPECT_EQ(all_hist.num_papers(), 5);
  EXPECT_TRUE(empty_stream.empty());
  auto [none, everything] = db.HoldOutLatest(99);
  EXPECT_EQ(none.num_papers(), 0);
  EXPECT_EQ(everything.size(), 5u);
}

TEST(PaperDatabaseTest, TsvRoundTrip) {
  PaperDatabase db;
  db.AddPaper(iuad::testing::MakePaper({"Al Pha", "Be Ta"}, "deep graphs",
                                       "ICDE", 2019, {3, 7}));
  db.AddPaper(iuad::testing::MakePaper({"Ga Mma"}, "untagged paper", "VLDB",
                                       2020));
  const std::string path =
      (std::filesystem::temp_directory_path() / "iuad_db_test.tsv").string();
  ASSERT_TRUE(db.SaveTsv(path).ok());
  auto loaded = PaperDatabase::LoadTsv(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_papers(), 2);
  EXPECT_EQ(loaded->paper(0).author_names,
            (std::vector<std::string>{"Al Pha", "Be Ta"}));
  EXPECT_EQ(loaded->paper(0).true_author_ids, (std::vector<AuthorId>{3, 7}));
  EXPECT_TRUE(loaded->paper(1).true_author_ids.empty());
  EXPECT_EQ(loaded->paper(1).venue, "VLDB");
  std::remove(path.c_str());
}

TEST(PaperDatabaseTest, LoadRejectsMalformedRows) {
  const auto dir = std::filesystem::temp_directory_path();
  const std::string bad1 = (dir / "iuad_bad1.tsv").string();
  ASSERT_TRUE(iuad::WriteTsvFile(bad1, {{"0", "2000", "V"}}).ok());
  EXPECT_FALSE(PaperDatabase::LoadTsv(bad1).ok());
  std::remove(bad1.c_str());

  const std::string bad2 = (dir / "iuad_bad2.tsv").string();
  ASSERT_TRUE(iuad::WriteTsvFile(
                  bad2, {{"0", "2000", "V", "title", "a|b", "1"}})
                  .ok());  // gt length mismatch
  EXPECT_FALSE(PaperDatabase::LoadTsv(bad2).ok());
  std::remove(bad2.c_str());
}

// --------------------------- CorpusGenerator --------------------------------

class CorpusGeneratorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    corpus_ = new Corpus(iuad::testing::SmallCorpus());
  }
  static void TearDownTestSuite() {
    delete corpus_;
    corpus_ = nullptr;
  }
  static Corpus* corpus_;
};
Corpus* CorpusGeneratorTest::corpus_ = nullptr;

TEST_F(CorpusGeneratorTest, GeneratesRequestedPaperCount) {
  EXPECT_EQ(corpus_->db.num_papers(), 2500);
}

TEST_F(CorpusGeneratorTest, GroundTruthIsConsistent) {
  for (const auto& p : corpus_->db.papers()) {
    ASSERT_EQ(p.author_names.size(), p.true_author_ids.size());
    std::unordered_set<std::string> names;
    std::unordered_set<AuthorId> ids;
    for (size_t i = 0; i < p.author_names.size(); ++i) {
      // Bylines never repeat a name or an author.
      EXPECT_TRUE(names.insert(p.author_names[i]).second);
      EXPECT_TRUE(ids.insert(p.true_author_ids[i]).second);
      // The printed name matches the planted author's name.
      const auto& prof =
          corpus_->authors[static_cast<size_t>(p.true_author_ids[i])];
      EXPECT_EQ(prof.name, p.author_names[i]);
    }
  }
}

TEST_F(CorpusGeneratorTest, YearsWithinLeadCareer) {
  for (const auto& p : corpus_->db.papers()) {
    const auto& lead =
        corpus_->authors[static_cast<size_t>(p.true_author_ids[0])];
    EXPECT_GE(p.year, lead.career_start);
    EXPECT_LE(p.year, lead.career_end);
  }
}

TEST_F(CorpusGeneratorTest, ProducesAmbiguousNames) {
  auto names = corpus_->AmbiguousNames(2);
  EXPECT_GT(names.size(), 5u);  // homonyms must exist for the task to be real
  // Every ambiguous name indeed has >= 2 distinct true authors in the db.
  for (const auto& name : names) {
    auto clusters = corpus_->TrueClustersOfName(name);
    EXPECT_GE(clusters.size(), 2u) << name;
  }
}

TEST_F(CorpusGeneratorTest, TrueClustersPartitionTheNamePapers) {
  for (const auto& name : corpus_->AmbiguousNames(2)) {
    auto clusters = corpus_->TrueClustersOfName(name);
    size_t total = 0;
    for (const auto& [author, papers] : clusters) total += papers.size();
    EXPECT_EQ(total, corpus_->db.PapersWithName(name).size());
  }
}

TEST_F(CorpusGeneratorTest, PapersPerNameIsHeavyTailed) {
  // Fig. 3a: the papers-per-name histogram should fit a clearly negative
  // log-log slope.
  std::vector<int64_t> counts;
  for (const auto& name : corpus_->db.names()) {
    counts.push_back(
        static_cast<int64_t>(corpus_->db.PapersWithName(name).size()));
  }
  auto fit = iuad::FitPowerLaw(iuad::FrequencyHistogram(counts));
  EXPECT_LT(fit.slope, -0.8);
  EXPECT_GT(fit.used_points, 10);
}

TEST_F(CorpusGeneratorTest, CoauthorPairFrequencyIsHeavyTailed) {
  // Fig. 3b: the 2-itemset frequency histogram also follows a power law —
  // the "stable collaborative relation" phenomenon the method depends on.
  mining::ItemEncoder enc;
  mining::PairCounter counter;
  for (const auto& p : corpus_->db.papers()) {
    mining::Transaction t;
    for (const auto& n : p.author_names) t.push_back(enc.Encode(n));
    counter.AddTransaction(t);
  }
  std::vector<int64_t> freqs;
  for (const auto& [key, c] : counter.counts()) freqs.push_back(c);
  auto fit = iuad::FitPowerLaw(iuad::FrequencyHistogram(freqs));
  EXPECT_LT(fit.slope, -1.0);
  // Repeat collaborations must actually exist (support for η = 2 mining).
  int64_t repeats = 0;
  for (int64_t f : freqs) {
    if (f >= 2) ++repeats;
  }
  EXPECT_GT(repeats, 100);
}

TEST_F(CorpusGeneratorTest, DeterministicForSameSeed) {
  Corpus again = iuad::testing::SmallCorpus();
  ASSERT_EQ(again.db.num_papers(), corpus_->db.num_papers());
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(again.db.paper(i).title, corpus_->db.paper(i).title);
    EXPECT_EQ(again.db.paper(i).author_names,
              corpus_->db.paper(i).author_names);
  }
}

TEST_F(CorpusGeneratorTest, DifferentSeedsDiffer) {
  Corpus other = iuad::testing::SmallCorpus(/*seed=*/999);
  int diff = 0;
  for (int i = 0; i < 50; ++i) {
    if (other.db.paper(i).title != corpus_->db.paper(i).title) ++diff;
  }
  EXPECT_GT(diff, 25);
}

TEST(CorpusGeneratorConfigTest, HomonymRateRespondsToPoolSize) {
  CorpusConfig many;
  many.num_communities = 4;
  many.authors_per_community = 30;
  many.num_papers = 800;
  many.given_name_pool = 400;  // huge pools -> few collisions
  many.surname_pool = 400;
  many.seed = 5;
  Corpus sparse = CorpusGenerator(many).Generate();

  CorpusConfig few = many;
  few.given_name_pool = 12;  // tiny pools -> many homonyms
  few.surname_pool = 10;
  Corpus dense = CorpusGenerator(few).Generate();

  EXPECT_GT(dense.AmbiguousNames(2).size(), sparse.AmbiguousNames(2).size());
}

}  // namespace
}  // namespace iuad::data
