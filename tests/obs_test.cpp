/// obs::Histogram / Registry: the properties the observability layer
/// leans on — bucket boundaries bracket every recorded value, snapshot
/// merge is associative and commutative, percentile estimates are true
/// upper bounds tight to one bucket width, concurrent recording loses
/// nothing, and the text exposition stays scrape-parseable.

#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "obs/exposition.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace iuad::obs {
namespace {

TEST(HistogramTest, BucketBoundariesAreLogSpacedAndMonotone) {
  // 10^(i/8): 8 buckets per decade, so b[i+8] == 10 * b[i] exactly in
  // structure (up to float rounding) and the sequence is strictly rising.
  EXPECT_DOUBLE_EQ(Histogram::BucketUpperBoundUs(0), 1.0);
  EXPECT_DOUBLE_EQ(Histogram::BucketUpperBoundUs(8), 10.0);
  EXPECT_DOUBLE_EQ(Histogram::BucketUpperBoundUs(16), 100.0);
  for (int i = 1; i < Histogram::kNumFiniteBounds; ++i) {
    EXPECT_GT(Histogram::BucketUpperBoundUs(i),
              Histogram::BucketUpperBoundUs(i - 1));
    EXPECT_NEAR(Histogram::BucketUpperBoundUs(i) /
                    Histogram::BucketUpperBoundUs(i - 1),
                std::pow(10.0, 1.0 / 8.0), 1e-12);
  }
}

TEST(HistogramTest, EveryValueLandsInItsBracketingBucket) {
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> exp_dist(-1.0, 9.0);
  for (int trial = 0; trial < 2000; ++trial) {
    const double v = std::pow(10.0, exp_dist(rng));
    const int idx = Histogram::BucketIndexForUs(v);
    ASSERT_GE(idx, 0);
    ASSERT_LT(idx, Histogram::kNumBuckets);
    if (idx < Histogram::kNumFiniteBounds) {
      EXPECT_LE(v, Histogram::BucketUpperBoundUs(idx));
    } else {
      EXPECT_GT(v, Histogram::BucketUpperBoundUs(Histogram::kNumFiniteBounds -
                                                 1));
    }
    if (idx > 0) EXPECT_GT(v, Histogram::BucketUpperBoundUs(idx - 1));
  }
  // Degenerate inputs clamp to the floor bucket instead of misindexing.
  EXPECT_EQ(Histogram::BucketIndexForUs(0.0), 0);
  EXPECT_EQ(Histogram::BucketIndexForUs(-5.0), 0);
  EXPECT_EQ(Histogram::BucketIndexForUs(std::nan("")), 0);
}

HistogramSnapshot SnapOf(const std::vector<double>& values_us) {
  Histogram h;
  for (double v : values_us) h.RecordUs(v);
  return h.Snapshot("t");
}

TEST(HistogramTest, SnapshotCountEqualsBucketSumAndRecordings) {
  const auto snap = SnapOf({0.5, 3.0, 3.1, 47.0, 1e6, 9e9});
  EXPECT_EQ(snap.count, 6);
  int64_t bucket_sum = 0;
  int32_t prev = -1;
  for (const auto& [idx, c] : snap.buckets) {
    EXPECT_GT(idx, prev);  // strictly increasing sparse indices
    EXPECT_GT(c, 0);
    prev = idx;
    bucket_sum += c;
  }
  EXPECT_EQ(bucket_sum, snap.count);
  EXPECT_EQ(snap.max_ns, static_cast<int64_t>(9e9) * 1000);
}

TEST(HistogramTest, MergeIsAssociativeAndCommutative) {
  std::mt19937_64 rng(11);
  std::uniform_real_distribution<double> exp_dist(0.0, 8.0);
  auto random_snap = [&] {
    std::vector<double> vs;
    const int n = static_cast<int>(rng() % 40);
    for (int i = 0; i < n; ++i) vs.push_back(std::pow(10.0, exp_dist(rng)));
    return SnapOf(vs);
  };
  auto equal = [](const HistogramSnapshot& a, const HistogramSnapshot& b) {
    return a.count == b.count && a.sum_ns == b.sum_ns &&
           a.max_ns == b.max_ns && a.buckets == b.buckets;
  };
  for (int trial = 0; trial < 50; ++trial) {
    const auto a = random_snap(), b = random_snap(), c = random_snap();
    // (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c)
    auto left = a;
    left.Merge(b);
    left.Merge(c);
    auto bc = b;
    bc.Merge(c);
    auto right = a;
    right.Merge(bc);
    EXPECT_TRUE(equal(left, right));
    // a ⊕ b == b ⊕ a
    auto ab = a;
    ab.Merge(b);
    auto ba = b;
    ba.Merge(a);
    EXPECT_TRUE(equal(ab, ba));
  }
}

TEST(HistogramTest, MergedSnapshotEqualsSingleHistogramOfAllValues) {
  // Mergeability: shard-local histograms folded together must equal one
  // histogram that saw every value (the property the bench and any future
  // cross-process aggregation rely on).
  std::vector<double> a = {1.5, 80.0, 900.0}, b = {2.5, 80.0, 4e7};
  auto merged = SnapOf(a);
  merged.Merge(SnapOf(b));
  std::vector<double> all = a;
  all.insert(all.end(), b.begin(), b.end());
  const auto direct = SnapOf(all);
  EXPECT_EQ(merged.count, direct.count);
  EXPECT_EQ(merged.sum_ns, direct.sum_ns);
  EXPECT_EQ(merged.max_ns, direct.max_ns);
  EXPECT_EQ(merged.buckets, direct.buckets);
}

TEST(HistogramTest, PercentileIsAnUpperBoundTightToOneBucket) {
  std::mt19937_64 rng(23);
  std::uniform_real_distribution<double> exp_dist(0.0, 7.0);
  constexpr double kBucketRatio = 1.3335214321633241;  // 10^(1/8)
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<double> vs;
    const int n = 1 + static_cast<int>(rng() % 200);
    for (int i = 0; i < n; ++i) vs.push_back(std::pow(10.0, exp_dist(rng)));
    const auto snap = SnapOf(vs);
    std::sort(vs.begin(), vs.end());
    for (double p : {50.0, 90.0, 95.0, 99.0, 100.0}) {
      const size_t rank = std::max<size_t>(
          1, static_cast<size_t>(std::ceil(p / 100.0 * vs.size())));
      const double exact = vs[rank - 1];
      const double est = snap.PercentileUs(p);
      // Upper bound up to the max's nanosecond quantization (max_ns is an
      // int64 of nanoseconds, so the clamp can sit half an ns below).
      EXPECT_GE(est, exact - 1e-3) << "p" << p << " n=" << n;
      EXPECT_LE(est, exact * kBucketRatio + 1e-9) << "p" << p;  // tight
      EXPECT_LE(est, snap.MaxUs() + 1e-9);  // never past the observed max
    }
  }
}

TEST(HistogramTest, PercentileEdgeCases) {
  EXPECT_EQ(HistogramSnapshot{}.PercentileUs(99), 0.0);
  const auto one = SnapOf({42.0});
  EXPECT_DOUBLE_EQ(one.PercentileUs(50), 42.0);   // clamped to max
  EXPECT_DOUBLE_EQ(one.PercentileUs(100), 42.0);
  // Overflow-bucket values report the recorded max, not a boundary.
  const auto huge = SnapOf({9e9});
  EXPECT_DOUBLE_EQ(huge.PercentileUs(99), 9e9);
}

TEST(HistogramTest, ConcurrentRecordingLosesNothing) {
  Histogram h;
  constexpr int kThreads = 8, kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.RecordUs(static_cast<double>(1 + (t * kPerThread + i) % 1000));
      }
    });
  }
  for (auto& t : threads) t.join();
  const auto snap = h.Snapshot("concurrent");
  EXPECT_EQ(snap.count, kThreads * kPerThread);
  EXPECT_EQ(snap.max_ns, 1000 * 1000);
  int64_t sum = 0;
  for (const auto& [idx, c] : snap.buckets) sum += c;
  EXPECT_EQ(sum, snap.count);
}

TEST(RegistryTest, InstrumentsAreStableAndSnapshotsSortByName) {
  Registry reg;
  Counter* c = reg.GetCounter("zulu_events");
  EXPECT_EQ(c, reg.GetCounter("zulu_events"));  // same name, same instrument
  reg.GetCounter("alpha_events")->Add(3);
  c->Add(2);
  reg.GetGauge("depth")->Set(7);
  reg.GetHistogram("lat_us")->RecordUs(10.0);
  const auto snap = reg.Snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].name, "alpha_events");
  EXPECT_EQ(snap.counters[0].value, 3);
  EXPECT_EQ(snap.counters[1].name, "zulu_events");
  EXPECT_EQ(snap.counters[1].value, 2);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].value, 7);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].name, "lat_us");
  EXPECT_EQ(snap.histograms[0].count, 1);
}

TEST(RegistryTest, ConcurrentGetAndRecordIsSafe) {
  Registry reg;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&reg] {
      for (int i = 0; i < 500; ++i) {
        reg.GetCounter("shared")->Increment();
        reg.GetHistogram("lat_us")->RecordUs(5.0);
        if (i % 50 == 0) (void)reg.Snapshot();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(reg.GetCounter("shared")->Value(), 8 * 500);
  EXPECT_EQ(reg.GetHistogram("lat_us")->Count(), 8 * 500);
}

TEST(ExpositionTest, TextFormatCarriesTypesBucketsAndPercentiles) {
  Registry reg;
  reg.GetCounter("papers_applied")->Add(60);
  reg.GetGauge("queue_depth")->Set(4);
  Histogram* h = reg.GetHistogram("commit_latency_us");
  h->RecordUs(2.0);
  h->RecordUs(50.0);
  const std::string text = TextExposition(reg.Snapshot());
  EXPECT_NE(text.find("# TYPE iuad_papers_applied counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("iuad_papers_applied 60\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE iuad_queue_depth gauge\n"), std::string::npos);
  EXPECT_NE(text.find("iuad_queue_depth 4\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE iuad_commit_latency_us histogram\n"),
            std::string::npos);
  EXPECT_NE(text.find("iuad_commit_latency_us_bucket{le=\"+Inf\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("iuad_commit_latency_us_count 2\n"), std::string::npos);
  EXPECT_NE(text.find("iuad_commit_latency_us_max 50\n"), std::string::npos);
  EXPECT_NE(text.find("iuad_commit_latency_us_p99"), std::string::npos);
  // Cumulative bucket counts: the le lines must be non-decreasing.
  int64_t prev = -1;
  size_t pos = 0;
  while ((pos = text.find("_bucket{le=", pos)) != std::string::npos) {
    const size_t space = text.find("} ", pos);
    const size_t nl = text.find('\n', space);
    const int64_t v = std::stoll(text.substr(space + 2, nl - space - 2));
    EXPECT_GE(v, prev);
    prev = v;
    pos = nl;
  }
}

TEST(ExpositionTest, MetricsServerServesAScrape) {
  Registry reg;
  reg.GetCounter("papers_applied")->Add(3);
  MetricsServer server(&reg);
  ASSERT_TRUE(server.Start(0).ok());
  ASSERT_GT(server.bound_port(), 0);

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(server.bound_port()));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const std::string req = "GET /metrics HTTP/1.0\r\n\r\n";
  ASSERT_EQ(::send(fd, req.data(), req.size(), 0),
            static_cast<ssize_t>(req.size()));
  std::string resp;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    resp.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  EXPECT_NE(resp.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(resp.find("iuad_papers_applied 3\n"), std::string::npos);
  server.Shutdown();
}

TEST(SpanTest, BreakdownListsStagesInOrderWithTotals) {
  Span span(42);
  span.Stage("enqueue", 1'000'000);   // 1ms
  span.Stage("scatter", 2'500'000);   // 2.5ms
  EXPECT_EQ(span.TotalNs(), 3'500'000);
  const std::string line = span.Breakdown();
  EXPECT_NE(line.find("seq=42"), std::string::npos);
  EXPECT_NE(line.find("total=3.500ms"), std::string::npos);
  EXPECT_NE(line.find("enqueue=1.000ms"), std::string::npos);
  EXPECT_NE(line.find("scatter=2.500ms"), std::string::npos);
  EXPECT_LT(line.find("enqueue="), line.find("scatter="));
}

}  // namespace
}  // namespace iuad::obs
