/// obs::Histogram / Registry: the properties the observability layer
/// leans on — bucket boundaries bracket every recorded value, snapshot
/// merge is associative and commutative, percentile estimates are true
/// upper bounds tight to one bucket width, concurrent recording loses
/// nothing, and the text exposition stays scrape-parseable.

#include <gtest/gtest.h>

#include <csignal>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/exposition.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/trace.h"
#include "util/build_info.h"
#include "util/json_reader.h"

namespace iuad::obs {
namespace {

TEST(HistogramTest, BucketBoundariesAreLogSpacedAndMonotone) {
  // 10^(i/8): 8 buckets per decade, so b[i+8] == 10 * b[i] exactly in
  // structure (up to float rounding) and the sequence is strictly rising.
  EXPECT_DOUBLE_EQ(Histogram::BucketUpperBoundUs(0), 1.0);
  EXPECT_DOUBLE_EQ(Histogram::BucketUpperBoundUs(8), 10.0);
  EXPECT_DOUBLE_EQ(Histogram::BucketUpperBoundUs(16), 100.0);
  for (int i = 1; i < Histogram::kNumFiniteBounds; ++i) {
    EXPECT_GT(Histogram::BucketUpperBoundUs(i),
              Histogram::BucketUpperBoundUs(i - 1));
    EXPECT_NEAR(Histogram::BucketUpperBoundUs(i) /
                    Histogram::BucketUpperBoundUs(i - 1),
                std::pow(10.0, 1.0 / 8.0), 1e-12);
  }
}

TEST(HistogramTest, EveryValueLandsInItsBracketingBucket) {
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> exp_dist(-1.0, 9.0);
  for (int trial = 0; trial < 2000; ++trial) {
    const double v = std::pow(10.0, exp_dist(rng));
    const int idx = Histogram::BucketIndexForUs(v);
    ASSERT_GE(idx, 0);
    ASSERT_LT(idx, Histogram::kNumBuckets);
    if (idx < Histogram::kNumFiniteBounds) {
      EXPECT_LE(v, Histogram::BucketUpperBoundUs(idx));
    } else {
      EXPECT_GT(v, Histogram::BucketUpperBoundUs(Histogram::kNumFiniteBounds -
                                                 1));
    }
    if (idx > 0) EXPECT_GT(v, Histogram::BucketUpperBoundUs(idx - 1));
  }
  // Degenerate inputs clamp to the floor bucket instead of misindexing.
  EXPECT_EQ(Histogram::BucketIndexForUs(0.0), 0);
  EXPECT_EQ(Histogram::BucketIndexForUs(-5.0), 0);
  EXPECT_EQ(Histogram::BucketIndexForUs(std::nan("")), 0);
}

HistogramSnapshot SnapOf(const std::vector<double>& values_us) {
  Histogram h;
  for (double v : values_us) h.RecordUs(v);
  return h.Snapshot("t");
}

TEST(HistogramTest, SnapshotCountEqualsBucketSumAndRecordings) {
  const auto snap = SnapOf({0.5, 3.0, 3.1, 47.0, 1e6, 9e9});
  EXPECT_EQ(snap.count, 6);
  int64_t bucket_sum = 0;
  int32_t prev = -1;
  for (const auto& [idx, c] : snap.buckets) {
    EXPECT_GT(idx, prev);  // strictly increasing sparse indices
    EXPECT_GT(c, 0);
    prev = idx;
    bucket_sum += c;
  }
  EXPECT_EQ(bucket_sum, snap.count);
  EXPECT_EQ(snap.max_ns, static_cast<int64_t>(9e9) * 1000);
}

TEST(HistogramTest, MergeIsAssociativeAndCommutative) {
  std::mt19937_64 rng(11);
  std::uniform_real_distribution<double> exp_dist(0.0, 8.0);
  auto random_snap = [&] {
    std::vector<double> vs;
    const int n = static_cast<int>(rng() % 40);
    for (int i = 0; i < n; ++i) vs.push_back(std::pow(10.0, exp_dist(rng)));
    return SnapOf(vs);
  };
  auto equal = [](const HistogramSnapshot& a, const HistogramSnapshot& b) {
    return a.count == b.count && a.sum_ns == b.sum_ns &&
           a.max_ns == b.max_ns && a.buckets == b.buckets;
  };
  for (int trial = 0; trial < 50; ++trial) {
    const auto a = random_snap(), b = random_snap(), c = random_snap();
    // (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c)
    auto left = a;
    left.Merge(b);
    left.Merge(c);
    auto bc = b;
    bc.Merge(c);
    auto right = a;
    right.Merge(bc);
    EXPECT_TRUE(equal(left, right));
    // a ⊕ b == b ⊕ a
    auto ab = a;
    ab.Merge(b);
    auto ba = b;
    ba.Merge(a);
    EXPECT_TRUE(equal(ab, ba));
  }
}

TEST(HistogramTest, MergedSnapshotEqualsSingleHistogramOfAllValues) {
  // Mergeability: shard-local histograms folded together must equal one
  // histogram that saw every value (the property the bench and any future
  // cross-process aggregation rely on).
  std::vector<double> a = {1.5, 80.0, 900.0}, b = {2.5, 80.0, 4e7};
  auto merged = SnapOf(a);
  merged.Merge(SnapOf(b));
  std::vector<double> all = a;
  all.insert(all.end(), b.begin(), b.end());
  const auto direct = SnapOf(all);
  EXPECT_EQ(merged.count, direct.count);
  EXPECT_EQ(merged.sum_ns, direct.sum_ns);
  EXPECT_EQ(merged.max_ns, direct.max_ns);
  EXPECT_EQ(merged.buckets, direct.buckets);
}

TEST(HistogramTest, PercentileIsAnUpperBoundTightToOneBucket) {
  std::mt19937_64 rng(23);
  std::uniform_real_distribution<double> exp_dist(0.0, 7.0);
  constexpr double kBucketRatio = 1.3335214321633241;  // 10^(1/8)
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<double> vs;
    const int n = 1 + static_cast<int>(rng() % 200);
    for (int i = 0; i < n; ++i) vs.push_back(std::pow(10.0, exp_dist(rng)));
    const auto snap = SnapOf(vs);
    std::sort(vs.begin(), vs.end());
    for (double p : {50.0, 90.0, 95.0, 99.0, 100.0}) {
      const size_t rank = std::max<size_t>(
          1, static_cast<size_t>(std::ceil(p / 100.0 * vs.size())));
      const double exact = vs[rank - 1];
      const double est = snap.PercentileUs(p);
      // Upper bound up to the max's nanosecond quantization (max_ns is an
      // int64 of nanoseconds, so the clamp can sit half an ns below).
      EXPECT_GE(est, exact - 1e-3) << "p" << p << " n=" << n;
      EXPECT_LE(est, exact * kBucketRatio + 1e-9) << "p" << p;  // tight
      EXPECT_LE(est, snap.MaxUs() + 1e-9);  // never past the observed max
    }
  }
}

TEST(HistogramTest, PercentileEdgeCases) {
  EXPECT_EQ(HistogramSnapshot{}.PercentileUs(99), 0.0);
  const auto one = SnapOf({42.0});
  EXPECT_DOUBLE_EQ(one.PercentileUs(50), 42.0);   // clamped to max
  EXPECT_DOUBLE_EQ(one.PercentileUs(100), 42.0);
  // Overflow-bucket values report the recorded max, not a boundary.
  const auto huge = SnapOf({9e9});
  EXPECT_DOUBLE_EQ(huge.PercentileUs(99), 9e9);
}

TEST(HistogramTest, ConcurrentRecordingLosesNothing) {
  Histogram h;
  constexpr int kThreads = 8, kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.RecordUs(static_cast<double>(1 + (t * kPerThread + i) % 1000));
      }
    });
  }
  for (auto& t : threads) t.join();
  const auto snap = h.Snapshot("concurrent");
  EXPECT_EQ(snap.count, kThreads * kPerThread);
  EXPECT_EQ(snap.max_ns, 1000 * 1000);
  int64_t sum = 0;
  for (const auto& [idx, c] : snap.buckets) sum += c;
  EXPECT_EQ(sum, snap.count);
}

TEST(RegistryTest, InstrumentsAreStableAndSnapshotsSortByName) {
  Registry reg;
  Counter* c = reg.GetCounter("zulu_events");
  EXPECT_EQ(c, reg.GetCounter("zulu_events"));  // same name, same instrument
  reg.GetCounter("alpha_events")->Add(3);
  c->Add(2);
  reg.GetGauge("depth")->Set(7);
  reg.GetHistogram("lat_us")->RecordUs(10.0);
  const auto snap = reg.Snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].name, "alpha_events");
  EXPECT_EQ(snap.counters[0].value, 3);
  EXPECT_EQ(snap.counters[1].name, "zulu_events");
  EXPECT_EQ(snap.counters[1].value, 2);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].value, 7);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].name, "lat_us");
  EXPECT_EQ(snap.histograms[0].count, 1);
}

TEST(RegistryTest, ConcurrentGetAndRecordIsSafe) {
  Registry reg;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&reg] {
      for (int i = 0; i < 500; ++i) {
        reg.GetCounter("shared")->Increment();
        reg.GetHistogram("lat_us")->RecordUs(5.0);
        if (i % 50 == 0) (void)reg.Snapshot();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(reg.GetCounter("shared")->Value(), 8 * 500);
  EXPECT_EQ(reg.GetHistogram("lat_us")->Count(), 8 * 500);
}

TEST(ExpositionTest, TextFormatCarriesTypesBucketsAndPercentiles) {
  Registry reg;
  reg.GetCounter("papers_applied")->Add(60);
  reg.GetGauge("queue_depth")->Set(4);
  Histogram* h = reg.GetHistogram("commit_latency_us");
  h->RecordUs(2.0);
  h->RecordUs(50.0);
  const std::string text = TextExposition(reg.Snapshot());
  EXPECT_NE(text.find("# TYPE iuad_papers_applied counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("iuad_papers_applied 60\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE iuad_queue_depth gauge\n"), std::string::npos);
  EXPECT_NE(text.find("iuad_queue_depth 4\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE iuad_commit_latency_us histogram\n"),
            std::string::npos);
  EXPECT_NE(text.find("iuad_commit_latency_us_bucket{le=\"+Inf\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("iuad_commit_latency_us_count 2\n"), std::string::npos);
  EXPECT_NE(text.find("iuad_commit_latency_us_max 50\n"), std::string::npos);
  EXPECT_NE(text.find("iuad_commit_latency_us_p99"), std::string::npos);
  // Cumulative bucket counts: the le lines must be non-decreasing.
  int64_t prev = -1;
  size_t pos = 0;
  while ((pos = text.find("_bucket{le=", pos)) != std::string::npos) {
    const size_t space = text.find("} ", pos);
    const size_t nl = text.find('\n', space);
    const int64_t v = std::stoll(text.substr(space + 2, nl - space - 2));
    EXPECT_GE(v, prev);
    prev = v;
    pos = nl;
  }
}

TEST(ExpositionTest, MetricsServerServesAScrape) {
  Registry reg;
  reg.GetCounter("papers_applied")->Add(3);
  MetricsServer server(&reg);
  ASSERT_TRUE(server.Start(0).ok());
  ASSERT_GT(server.bound_port(), 0);

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(server.bound_port()));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const std::string req = "GET /metrics HTTP/1.0\r\n\r\n";
  ASSERT_EQ(::send(fd, req.data(), req.size(), 0),
            static_cast<ssize_t>(req.size()));
  std::string resp;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    resp.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  EXPECT_NE(resp.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(resp.find("iuad_papers_applied 3\n"), std::string::npos);
  server.Shutdown();
}

TEST(ExpositionTest, ProcessBlockCarriesUptimeRssAndBuildInfo) {
  const std::string text = ProcessExposition();
  EXPECT_NE(text.find("# TYPE iuad_uptime_seconds gauge\n"),
            std::string::npos);
  EXPECT_NE(text.find("iuad_uptime_seconds "), std::string::npos);
  EXPECT_NE(text.find("# TYPE iuad_rss_mb gauge\n"), std::string::npos);
  EXPECT_NE(text.find("iuad_build_info{version=\""), std::string::npos);
  EXPECT_NE(text.find("\",sanitizer=\""), std::string::npos);
  EXPECT_NE(text.find("\"} 1\n"), std::string::npos);
  // And the block rides along on every registry scrape.
  Registry reg;
  reg.GetCounter("anything")->Increment();
  const std::string scrape = TextExposition(reg.Snapshot());
  EXPECT_NE(scrape.find("iuad_build_info{"), std::string::npos);
  EXPECT_NE(scrape.find("iuad_rss_mb "), std::string::npos);
}

TEST(ExpositionTest, MetricsServerServesATracePath) {
  FlightRecorder::Instance().Record(TraceEventId::kPaperSubmit, 7);
  Registry reg;
  MetricsServer server(&reg);
  ASSERT_TRUE(server.Start(0).ok());
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(server.bound_port()));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const std::string req = "GET /trace HTTP/1.0\r\n\r\n";
  ASSERT_EQ(::send(fd, req.data(), req.size(), 0),
            static_cast<ssize_t>(req.size()));
  std::string resp;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    resp.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  server.Shutdown();
  EXPECT_NE(resp.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(resp.find("application/json"), std::string::npos);
  const size_t body_at = resp.find("\r\n\r\n");
  ASSERT_NE(body_at, std::string::npos);
  const std::string body = resp.substr(body_at + 4);
  EXPECT_NE(body.find("\"traceEvents\":["), std::string::npos);
  auto parsed = util::ParseJson(body);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
}

TEST(SpanTest, BreakdownListsStagesInOrderWithTotals) {
  Span span(42);
  span.Stage("enqueue", 1'000'000);   // 1ms
  span.Stage("scatter", 2'500'000);   // 2.5ms
  EXPECT_EQ(span.TotalNs(), 3'500'000);
  const std::string line = span.Breakdown();
  EXPECT_NE(line.find("seq=42"), std::string::npos);
  EXPECT_NE(line.find("total=3.500ms"), std::string::npos);
  EXPECT_NE(line.find("enqueue=1.000ms"), std::string::npos);
  EXPECT_NE(line.find("scatter=2.500ms"), std::string::npos);
  EXPECT_LT(line.find("enqueue="), line.find("scatter="));
}

TEST(FlightRecorderTest, RecordAtKeepsTheCallerStamp) {
  FlightRecorder r(64);
  r.RecordAt(123456789, TraceEventId::kPaperApply, 7, 1000);
  const auto events = r.Drain();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].ns, 123456789);
  EXPECT_EQ(events[0].id, static_cast<uint16_t>(TraceEventId::kPaperApply));
  EXPECT_EQ(events[0].a0, 7u);
  EXPECT_EQ(events[0].a1, 1000u);
}

TEST(FlightRecorderTest, FullRingOverwritesOldestAndKeepsTheTail) {
  FlightRecorder r(64);
  for (uint64_t i = 0; i < 200; ++i) {
    r.Record(TraceEventId::kPaperCommit, i, 5);
  }
  const auto events = r.Drain();
  ASSERT_EQ(events.size(), 64u);
  // The survivors are exactly the last 64 records, in order.
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].a0, 200 - 64 + i) << i;
    EXPECT_EQ(events[i].id,
              static_cast<uint16_t>(TraceEventId::kPaperCommit));
  }
}

TEST(FlightRecorderTest, CapacityClampsToTheDocumentedFloor) {
  FlightRecorder r(1);  // clamped to 64
  for (uint64_t i = 0; i < 100; ++i) {
    r.Record(TraceEventId::kPaperSubmit, i);
  }
  EXPECT_EQ(r.Drain().size(), 64u);
}

TEST(FlightRecorderTest, EachThreadGetsItsOwnRingAndNothingIsLost) {
  FlightRecorder r(128);
  constexpr int kThreads = 4, kPerThread = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&r, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        r.Record(TraceEventId::kShardScatter,
                 static_cast<uint64_t>(t) * 10000 + i);
      }
    });
  }
  for (auto& th : threads) th.join();
  const auto events = r.Drain();
  EXPECT_EQ(events.size(), static_cast<size_t>(kThreads) * 128);
  // Group by ring (tid): each holds its writer's last 128 records with
  // strictly increasing payloads ending at i = 999.
  std::vector<std::vector<uint64_t>> by_tid(FlightRecorder::kMaxThreads);
  for (const TraceEvent& e : events) {
    ASSERT_LT(e.tid, FlightRecorder::kMaxThreads);
    by_tid[e.tid].push_back(e.a0);
  }
  int rings_seen = 0;
  for (const auto& ring : by_tid) {
    if (ring.empty()) continue;
    ++rings_seen;
    EXPECT_EQ(ring.size(), 128u);
    const uint64_t writer = ring.front() / 10000;
    for (size_t i = 0; i < ring.size(); ++i) {
      EXPECT_EQ(ring[i], writer * 10000 + (kPerThread - 128 + i));
    }
  }
  EXPECT_EQ(rings_seen, kThreads);
  EXPECT_EQ(r.dropped(), 0);
}

TEST(FlightRecorderTest, DrainDuringRecordingNeverSurfacesTornEvents) {
  FlightRecorder r(64);
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    uint64_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      r.Record(TraceEventId::kPaperScatter, i, i * 3);
      ++i;
    }
  });
  for (int round = 0; round < 200; ++round) {
    for (const TraceEvent& e : r.Drain()) {
      // A torn slot would show a garbage id or mismatched args; the
      // drain-side overwrite guard must have discarded it instead.
      ASSERT_EQ(e.id, static_cast<uint16_t>(TraceEventId::kPaperScatter));
      ASSERT_EQ(e.a1, e.a0 * 3);
    }
  }
  stop = true;
  writer.join();
}

TEST(FlightRecorderTest, ThreadSlotCacheSurvivesRecorderRecreation) {
  // The thread-local slot cache is keyed by a never-reused recorder id, so
  // a fresh recorder on the same thread re-claims cleanly.
  for (int lifetime = 0; lifetime < 3; ++lifetime) {
    FlightRecorder r(64);
    r.Record(TraceEventId::kRefresh, static_cast<uint64_t>(lifetime));
    const auto events = r.Drain();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].a0, static_cast<uint64_t>(lifetime));
  }
}

TEST(ChromeTraceTest, SpansBecomeCompleteEventsAndInstantsStayInstant) {
  std::vector<TraceEvent> raw;
  raw.push_back({5'000'000, 3,
                 static_cast<uint16_t>(TraceEventId::kPaperCommit), 42,
                 2'000'000});
  raw.push_back({1'000'000, 0,
                 static_cast<uint16_t>(TraceEventId::kPaperSubmit), 42, 0});
  const auto events = ChromeTraceEvents(raw);
  ASSERT_EQ(events.size(), 2u);
  // Sorted by start time: the submit instant precedes the commit span.
  EXPECT_EQ(events[0].name, "submit");
  EXPECT_EQ(events[0].ph, 'i');
  EXPECT_EQ(events[0].ts_us, 1000);
  EXPECT_EQ(events[1].name, "paper");
  EXPECT_EQ(events[1].ph, 'X');
  EXPECT_EQ(events[1].ts_us, 3000);  // end - dur
  EXPECT_EQ(events[1].dur_us, 2000);
  EXPECT_EQ(events[1].tid, 3);
  EXPECT_EQ(events[1].a0, 42);
}

TEST(ChromeTraceTest, JsonDocumentIsWellFormedAndPerfettoShaped) {
  std::vector<TraceEvent> raw;
  for (uint64_t i = 0; i < 5; ++i) {
    raw.push_back({static_cast<int64_t>(1'000'000 * (i + 2)), 1,
                   static_cast<uint16_t>(i % 2 == 0
                                             ? TraceEventId::kPaperCommit
                                             : TraceEventId::kPaperDefer),
                   i, i % 2 == 0 ? 1'000'000 : i});
  }
  const std::string json = ChromeTraceJson(ChromeTraceEvents(raw));
  EXPECT_EQ(json.back(), '\n');
  auto parsed = util::ParseJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_TRUE(parsed->is_object());
  ASSERT_EQ(parsed->members().size(), 1u);
  EXPECT_EQ(parsed->members()[0].first, "traceEvents");
  const auto& items = parsed->members()[0].second.items();
  ASSERT_EQ(items.size(), 5u);
  for (const auto& item : items) {
    ASSERT_TRUE(item.is_object());
    bool has_dur = false;
    std::string ph;
    for (const auto& [key, value] : item.members()) {
      if (key == "dur") has_dur = true;
      if (key == "ph") ph = value.as_string();
      if (key == "pid") EXPECT_EQ(value.as_int(), 1);
    }
    EXPECT_EQ(has_dur, ph == "X");  // "dur" present exactly on spans
  }
}

TEST(ExemplarTableTest, KeepsTheTopKByTotalWithSeqTieBreak) {
  ExemplarTable table(3);
  const int64_t totals[] = {10, 50, 30, 50, 20};
  for (int i = 0; i < 5; ++i) {
    SlowCommitExemplar e;
    e.seq = i + 1;
    e.total_ns = totals[i];
    e.stages.push_back({"apply", totals[i]});
    table.Offer(std::move(e));
  }
  const auto kept = table.Snapshot();
  ASSERT_EQ(kept.size(), 3u);
  EXPECT_EQ(kept[0].seq, 2);  // 50ns, earlier seq wins the tie
  EXPECT_EQ(kept[1].seq, 4);  // 50ns
  EXPECT_EQ(kept[2].seq, 3);  // 30ns
  ASSERT_EQ(kept[0].stages.size(), 1u);
  EXPECT_EQ(kept[0].stages[0].name, "apply");
}

/// Post-mortem path, end to end: a forked child arms the crash handler,
/// records real events, then dies of SIGSEGV — the parent asserts the
/// `.crash` dump is complete and well-formed. Sanitizers install their
/// own fatal-signal machinery, so the test only runs on plain builds.
TEST(CrashDumpTest, ForkedChildWritesAWellFormedDumpOnSigsegv) {
  if (std::string(util::BuildSanitizer()) != "none") {
    GTEST_SKIP() << "sanitizer runtime owns the fatal-signal handlers";
  }
  const std::string path =
      ::testing::TempDir() + "iuad_crash_test_" +
      std::to_string(::getpid()) + ".crash";
  std::remove(path.c_str());
  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    InstallCrashHandler(path);
    FlightRecorder& r = FlightRecorder::Instance();
    r.Record(TraceEventId::kPaperSubmit, 7);
    r.RecordAt(obs::NowNs(), TraceEventId::kPaperCommit, 7, 1234);
    ExemplarTable table(4);
    SlowCommitExemplar e;
    e.seq = 7;
    e.total_ns = 1234;
    e.stages.push_back({"apply", 1234});
    e.deferrals.push_back({"A. Name", 6});
    table.Offer(std::move(e));
    std::raise(SIGSEGV);
    ::_exit(0);  // unreachable: the handler re-raises after dumping
  }
  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  EXPECT_TRUE(WIFSIGNALED(status));
  EXPECT_EQ(WTERMSIG(status), SIGSEGV);
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "no crash dump at " << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string dump = buffer.str();
  EXPECT_NE(dump.find("iuad crash dump signal=" +
                      std::to_string(SIGSEGV)),
            std::string::npos);
  EXPECT_NE(dump.find("name=submit"), std::string::npos);
  EXPECT_NE(dump.find("name=paper"), std::string::npos);
  EXPECT_NE(dump.find("a1=1234"), std::string::npos);
  EXPECT_NE(dump.find("slow-commit exemplars"), std::string::npos);
  EXPECT_NE(dump.find("exemplar seq=7 total_ns=1234"), std::string::npos);
  EXPECT_NE(dump.find("deferred:A. Name<-seq=6"), std::string::npos);
  EXPECT_NE(dump.find("end of crash dump"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace iuad::obs
