#include <gtest/gtest.h>

#include <cmath>

#include "core/similarity.h"
#include "testing_utils.h"

namespace iuad::core {
namespace {

using graph::CollabGraph;
using graph::VertexId;

/// Untrained embeddings: γ3 must degrade to 0, everything else still works.
const text::Word2Vec& NoEmbeddings() {
  static const text::Word2Vec* const kEmpty = new text::Word2Vec();
  return *kEmpty;
}

IuadConfig DefaultConfig() {
  IuadConfig cfg;
  cfg.wl_iterations = 2;
  return cfg;
}

/// Fixture: two same-name vertices with controllable overlap.
///   db: p0..p3. "X" vertices: vx1 {p0, p1}, vx2 {p2, p3}.
///   p0/p2 share venue "ICDE" and keyword "kernels"; p1/p3 differ.
class SimilarityFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    p0_ = db_.AddPaper(iuad::testing::MakePaper({"X", "Alice", "Bob"},
                                                "graph kernels", "ICDE", 2010));
    p1_ = db_.AddPaper(iuad::testing::MakePaper({"X", "Alice"},
                                                "network mining", "VLDB", 2011));
    p2_ = db_.AddPaper(iuad::testing::MakePaper({"X", "Alice", "Bob"},
                                                "deep kernels", "ICDE", 2012));
    p3_ = db_.AddPaper(iuad::testing::MakePaper({"X", "Carol"},
                                                "query plans", "SIGMOD", 2013));
    // Graph: vx1 - alice1 - bob1 triangle; vx2 - alice2 - bob2 triangle.
    vx1_ = g_.AddVertex("X", {p0_, p1_});
    a1_ = g_.AddVertex("Alice", {p0_, p1_, p2_});
    b1_ = g_.AddVertex("Bob", {p0_});
    EXPECT_TRUE(g_.AddEdgePapers(vx1_, a1_, {p0_, p1_}).ok());
    EXPECT_TRUE(g_.AddEdgePapers(vx1_, b1_, {p0_}).ok());
    EXPECT_TRUE(g_.AddEdgePapers(a1_, b1_, {p0_}).ok());
    vx2_ = g_.AddVertex("X", {p2_, p3_});
    a2_ = g_.AddVertex("Alice", {p2_});
    b2_ = g_.AddVertex("Bob", {p2_});
    EXPECT_TRUE(g_.AddEdgePapers(vx2_, a2_, {p2_}).ok());
    EXPECT_TRUE(g_.AddEdgePapers(vx2_, b2_, {p2_}).ok());
    EXPECT_TRUE(g_.AddEdgePapers(a2_, b2_, {p2_}).ok());
    // A third X vertex with nothing in common.
    vx3_ = g_.AddVertex("X", {p3_});
  }

  data::PaperDatabase db_;
  CollabGraph g_;
  int p0_, p1_, p2_, p3_;
  VertexId vx1_, a1_, b1_, vx2_, a2_, b2_, vx3_;
};

TEST_F(SimilarityFixture, VectorHasSixFeatures) {
  SimilarityComputer sim(db_, g_, NoEmbeddings(), DefaultConfig());
  auto gamma = sim.Compute(vx1_, vx2_);
  ASSERT_EQ(gamma.size(), static_cast<size_t>(kNumSimilarities));
}

TEST_F(SimilarityFixture, WlKernelHighForMirroredNeighborhoods) {
  SimilarityComputer sim(db_, g_, NoEmbeddings(), DefaultConfig());
  auto gamma12 = sim.Compute(vx1_, vx2_);
  auto gamma13 = sim.Compute(vx1_, vx3_);
  EXPECT_GT(gamma12[0], 0.5);            // both sit in an Alice-Bob triangle
  EXPECT_GT(gamma12[0], gamma13[0]);     // vx3 is isolated
  EXPECT_GE(gamma13[0], 0.0);
}

TEST_F(SimilarityFixture, CliqueCoincidenceCountsSharedTriangles) {
  SimilarityComputer sim(db_, g_, NoEmbeddings(), DefaultConfig());
  auto gamma = sim.Compute(vx1_, vx2_);
  // Both participate in an {Alice, Bob} triangle; τ = min(2, 2) = 2, and
  // the overlap features are log1p-compressed (similarity.h).
  EXPECT_DOUBLE_EQ(gamma[1], std::log1p(0.5));
  auto gamma13 = sim.Compute(vx1_, vx3_);
  EXPECT_DOUBLE_EQ(gamma13[1], 0.0);
}

TEST_F(SimilarityFixture, TimeConsistencyUsesSharedRareKeywords) {
  SimilarityComputer sim(db_, g_, NoEmbeddings(), DefaultConfig());
  auto gamma = sim.Compute(vx1_, vx2_);
  // Shared keyword "kernels" (freq 2), years 2010 vs 2012 -> decay e^{-2α},
  // weight 1/log(3), τ = 2. (Eq. 7 with the documented e^{-α·Δ} reading.)
  const double expected =
      std::log1p(std::exp(-0.62 * 2.0) / std::log(3.0) / 2.0);
  EXPECT_NEAR(gamma[3], expected, 1e-9);
}

TEST_F(SimilarityFixture, RepresentativeCommunityCrossCounts) {
  SimilarityComputer sim(db_, g_, NoEmbeddings(), DefaultConfig());
  auto gamma = sim.Compute(vx1_, vx2_);
  // Representative venues: vx1 -> ICDE (ties broken lexicographically:
  // ICDE < VLDB), vx2 -> ICDE (< SIGMOD). cnt(H2, ICDE) = 1, cnt(H1, ICDE)
  // = 1, τ = 2 -> γ5 = log1p(1).
  EXPECT_DOUBLE_EQ(gamma[4], std::log1p(1.0));
}

TEST_F(SimilarityFixture, ResearchCommunityAdamicAdar) {
  SimilarityComputer sim(db_, g_, NoEmbeddings(), DefaultConfig());
  auto gamma = sim.Compute(vx1_, vx2_);
  // Shared venue ICDE with min multiplicity 1; F_H(ICDE) = 2 papers.
  const double expected = std::log1p((1.0 / std::log(3.0)) / 2.0);
  EXPECT_NEAR(gamma[5], expected, 1e-9);
  auto gamma13 = sim.Compute(vx1_, vx3_);
  // vx3 published only in SIGMOD; vx1 never did.
  EXPECT_DOUBLE_EQ(gamma13[5], 0.0);
}

TEST_F(SimilarityFixture, Gamma3ZeroWithoutEmbeddings) {
  SimilarityComputer sim(db_, g_, NoEmbeddings(), DefaultConfig());
  EXPECT_DOUBLE_EQ(sim.Compute(vx1_, vx2_)[2], 0.0);
}

TEST_F(SimilarityFixture, Gamma3PositiveWithSharedTopicEmbeddings) {
  text::Word2VecConfig wc;
  wc.min_count = 1;
  wc.epochs = 10;
  text::Word2Vec w2v(wc);
  std::vector<std::vector<std::string>> sentences;
  for (const auto& p : db_.papers()) sentences.push_back(db_.KeywordsOf(p.id));
  // Tiny corpus: just ensure training succeeds and cosine is defined.
  ASSERT_TRUE(w2v.Train(sentences).ok());
  SimilarityComputer sim(db_, g_, w2v, DefaultConfig());
  auto gamma = sim.Compute(vx1_, vx2_);
  EXPECT_GE(gamma[2], -1.0);
  EXPECT_LE(gamma[2], 1.0);
  EXPECT_NE(gamma[2], 0.0);  // both profiles embed "kernels"
}

TEST_F(SimilarityFixture, SymmetricInArguments) {
  SimilarityComputer sim(db_, g_, NoEmbeddings(), DefaultConfig());
  auto ab = sim.Compute(vx1_, vx2_);
  auto ba = sim.Compute(vx2_, vx1_);
  for (int f = 0; f < kNumSimilarities; ++f) {
    EXPECT_NEAR(ab[static_cast<size_t>(f)], ba[static_cast<size_t>(f)], 1e-12)
        << "feature " << f;
  }
}

TEST_F(SimilarityFixture, SelfSimilarityIsMaximalOnStructure) {
  SimilarityComputer sim(db_, g_, NoEmbeddings(), DefaultConfig());
  auto self = sim.Compute(vx1_, vx1_);
  EXPECT_NEAR(self[0], 1.0, 1e-12);
  EXPECT_GT(self[1], 0.0);
}

TEST_F(SimilarityFixture, InvalidateProfileRefreshesAfterMutation) {
  SimilarityComputer sim(db_, g_, NoEmbeddings(), DefaultConfig());
  auto before = sim.Compute(vx1_, vx3_);
  // Give vx3 the shared-venue paper p2 — γ6 must now see ICDE overlap.
  g_.AddVertexPapers(vx3_, {p2_});
  sim.InvalidateProfile(vx3_);
  auto after = sim.Compute(vx1_, vx3_);
  EXPECT_GT(after[5], before[5]);
}

TEST_F(SimilarityFixture, ComputeVsNewPaperMatchesSemantics) {
  SimilarityComputer sim(db_, g_, NoEmbeddings(), DefaultConfig());
  // A new paper by X at ICDE with keyword "kernels": should look much more
  // like vx1/vx2 than a paper in an unrelated venue with fresh words.
  data::Paper close = iuad::testing::MakePaper({"X", "Alice"},
                                               "kernels forever", "ICDE", 2013);
  data::Paper far = iuad::testing::MakePaper({"X", "Zed"},
                                             "volcano tectonics", "GeoConf", 2013);
  auto g_close = sim.ComputeVsNewPaper(vx1_, close, "X");
  auto g_far = sim.ComputeVsNewPaper(vx1_, far, "X");
  ASSERT_EQ(g_close.size(), static_cast<size_t>(kNumSimilarities));
  EXPECT_DOUBLE_EQ(g_close[1], 0.0);  // isolated occurrence: no cliques
  EXPECT_DOUBLE_EQ(g_far[1], 0.0);
  EXPECT_GT(g_close[3], g_far[3]);  // shared rare keyword
  EXPECT_GT(g_close[4], g_far[4]);  // representative venue
  EXPECT_GT(g_close[5], g_far[5]);  // venue overlap
}

TEST_F(SimilarityFixture, ComputeVsNewPaperWlUsesCoauthorNames) {
  SimilarityComputer sim(db_, g_, NoEmbeddings(), DefaultConfig());
  // A single-author paper carries no structural evidence at all.
  data::Paper solo = iuad::testing::MakePaper({"X"}, "anything", "V", 2020);
  EXPECT_DOUBLE_EQ(sim.ComputeVsNewPaper(vx1_, solo, "X")[0], 0.0);
  // A paper co-authored with Alice: positive against vx1 (Alice is in its
  // ball), zero against the isolated vx3.
  data::Paper with_alice =
      iuad::testing::MakePaper({"X", "Alice"}, "anything", "V", 2020);
  const double k1 = sim.ComputeVsNewPaper(vx1_, with_alice, "X")[0];
  EXPECT_GT(k1, 0.0);
  EXPECT_LE(k1, 1.0);
  EXPECT_DOUBLE_EQ(sim.ComputeVsNewPaper(vx3_, with_alice, "X")[0], 0.0);
  // Unknown co-author names give nothing.
  data::Paper with_stranger =
      iuad::testing::MakePaper({"X", "Stranger"}, "anything", "V", 2020);
  EXPECT_DOUBLE_EQ(sim.ComputeVsNewPaper(vx1_, with_stranger, "X")[0], 0.0);
}

TEST_F(SimilarityFixture, AllOverlapFeaturesNonNegative) {
  SimilarityComputer sim(db_, g_, NoEmbeddings(), DefaultConfig());
  for (VertexId u : {vx1_, vx2_, vx3_}) {
    for (VertexId v : {vx1_, vx2_, vx3_}) {
      auto gamma = sim.Compute(u, v);
      EXPECT_GE(gamma[0], 0.0);
      EXPECT_GE(gamma[1], 0.0);
      EXPECT_GE(gamma[3], 0.0);
      EXPECT_GE(gamma[4], 0.0);
      EXPECT_GE(gamma[5], 0.0);
    }
  }
}

}  // namespace
}  // namespace iuad::core
