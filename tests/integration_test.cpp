#include <gtest/gtest.h>

#include "baselines/unsupervised.h"
#include "core/incremental.h"
#include "core/pipeline.h"
#include "eval/evaluator.h"
#include "testing_utils.h"

namespace iuad {
namespace {

/// End-to-end: IUAD and the strongest baselines on one synthetic corpus,
/// checking the *shape* of the paper's headline results (Table III/IV) at
/// test scale.
class EndToEndTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::CorpusConfig cc;
    cc.num_communities = 16;
    cc.authors_per_community = 60;
    cc.num_papers = 5000;
    cc.given_name_pool = 180;
    cc.surname_pool = 140;
    cc.name_zipf = 0.7;
    cc.seed = 77;
    corpus_ = new data::Corpus(data::CorpusGenerator(cc).Generate());

    core::IuadConfig cfg;
    cfg.word2vec.dim = 16;
    cfg.word2vec.epochs = 2;
    core::IuadPipeline pipeline(cfg);
    auto result = pipeline.Run(corpus_->db);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    result_ = new core::DisambiguationResult(std::move(*result));
    names_ = new std::vector<std::string>(corpus_->TestNames(2));
  }
  static void TearDownTestSuite() {
    delete result_;
    delete corpus_;
    delete names_;
    result_ = nullptr;
    corpus_ = nullptr;
    names_ = nullptr;
  }

  static data::Corpus* corpus_;
  static core::DisambiguationResult* result_;
  static std::vector<std::string>* names_;
};
data::Corpus* EndToEndTest::corpus_ = nullptr;
core::DisambiguationResult* EndToEndTest::result_ = nullptr;
std::vector<std::string>* EndToEndTest::names_ = nullptr;

TEST_F(EndToEndTest, IuadReachesStrongAbsoluteMetrics) {
  auto m = eval::EvaluateOccurrences(corpus_->db, result_->occurrences,
                                     *names_);
  // Paper reports A/P/R/F = .82/.86/.81/.84 on DBLP; on the synthetic
  // corpus we only require the same regime, not the same numbers.
  EXPECT_GT(m.precision, 0.75);
  EXPECT_GT(m.recall, 0.5);
  EXPECT_GT(m.f1, 0.6);
  EXPECT_GT(m.accuracy, 0.7);
}

TEST_F(EndToEndTest, IuadBeatsEveryUnsupervisedBaselineOnF1) {
  auto iuad_m = eval::EvaluateOccurrences(corpus_->db, result_->occurrences,
                                          *names_);
  // Give baselines the same trained embeddings IUAD used.
  std::vector<std::unique_ptr<baselines::UnsupervisedBaseline>> competitors;
  competitors.push_back(std::make_unique<baselines::AnonBaseline>(
      corpus_->db, &result_->embeddings));
  competitors.push_back(std::make_unique<baselines::NetEBaseline>(
      corpus_->db, &result_->embeddings));
  competitors.push_back(std::make_unique<baselines::AminerBaseline>(
      corpus_->db, &result_->embeddings));
  competitors.push_back(
      std::make_unique<baselines::GhostBaseline>(corpus_->db));
  for (const auto& baseline : competitors) {
    auto m = eval::EvaluateClusterer(
        corpus_->db,
        [&](const std::string& n) { return baseline->Disambiguate(n); },
        *names_);
    EXPECT_GT(iuad_m.f1, m.f1) << "IUAD should beat " << baseline->Name();
  }
}

TEST_F(EndToEndTest, DataScaleImprovesRecall) {
  // Fig. 5's shape: recall grows substantially with data scale.
  core::IuadConfig cfg;
  cfg.word2vec.dim = 16;
  cfg.word2vec.epochs = 2;
  core::IuadPipeline pipeline(cfg);
  auto small_db = corpus_->db.PrefixByYearFraction(0.3);
  auto small = pipeline.Run(small_db);
  ASSERT_TRUE(small.ok());
  auto small_m =
      eval::EvaluateOccurrences(small_db, small->occurrences, *names_);
  auto full_m = eval::EvaluateOccurrences(corpus_->db, result_->occurrences,
                                          *names_);
  EXPECT_GT(full_m.recall, small_m.recall);
}

TEST_F(EndToEndTest, SaveLoadRoundTripPreservesResults) {
  // The corpus can be persisted and reloaded without changing IUAD output.
  const std::string path = "/tmp/iuad_integration_corpus.tsv";
  ASSERT_TRUE(corpus_->db.SaveTsv(path).ok());
  auto reloaded = data::PaperDatabase::LoadTsv(path);
  ASSERT_TRUE(reloaded.ok());
  ASSERT_EQ(reloaded->num_papers(), corpus_->db.num_papers());

  core::IuadConfig cfg;
  cfg.word2vec.dim = 16;
  cfg.word2vec.epochs = 2;
  auto rerun = core::IuadPipeline(cfg).Run(*reloaded);
  ASSERT_TRUE(rerun.ok());
  auto m1 = eval::EvaluateOccurrences(corpus_->db, result_->occurrences,
                                      *names_);
  auto m2 = eval::EvaluateOccurrences(*reloaded, rerun->occurrences, *names_);
  EXPECT_DOUBLE_EQ(m1.f1, m2.f1);
  std::remove(path.c_str());
}

TEST_F(EndToEndTest, IncrementalIngestionEndToEnd) {
  auto [history, stream] = corpus_->db.HoldOutLatest(100);
  core::IuadConfig cfg;
  cfg.word2vec.dim = 16;
  cfg.word2vec.epochs = 2;
  auto built = core::IuadPipeline(cfg).Run(history);
  ASSERT_TRUE(built.ok());
  auto before = eval::EvaluateOccurrences(history, built->occurrences,
                                          *names_);
  core::IncrementalDisambiguator inc(&history, &*built, cfg);
  for (const auto& p : stream) {
    ASSERT_TRUE(inc.AddPaper(p).ok());
  }
  auto after = eval::EvaluateOccurrences(history, built->occurrences,
                                         *names_);
  // Table VI's shape: quality moves only slightly after ingesting a stream.
  EXPECT_GT(after.f1, before.f1 - 0.15);
}

}  // namespace
}  // namespace iuad
