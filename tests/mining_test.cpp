#include <gtest/gtest.h>

#include <algorithm>

#include "mining/apriori.h"
#include "mining/fpgrowth.h"
#include "mining/pair_miner.h"
#include "util/rng.h"

namespace iuad::mining {
namespace {

std::vector<Transaction> ClassicTransactions() {
  // The worked example from Han et al.'s FP-growth paper (items renamed to
  // ints): frequent structure is well known.
  return {
      {0, 1, 2}, {1, 3}, {1, 2}, {0, 1, 3}, {0, 2}, {1, 2}, {0, 2},
      {0, 1, 2, 4}, {0, 1, 2},
  };
}

int64_t SupportOf(const std::vector<FrequentItemset>& sets,
                  std::vector<Item> items) {
  std::sort(items.begin(), items.end());
  for (const auto& fi : sets) {
    if (fi.items == items) return fi.support;
  }
  return -1;
}

// --------------------------- ItemEncoder ------------------------------------

TEST(ItemEncoderTest, EncodeDecodeRoundTrip) {
  ItemEncoder enc;
  const Item a = enc.Encode("Wei Wang");
  const Item b = enc.Encode("Dong Wang");
  EXPECT_NE(a, b);
  EXPECT_EQ(enc.Encode("Wei Wang"), a);
  EXPECT_EQ(enc.Decode(b), "Dong Wang");
  EXPECT_EQ(enc.size(), 2);
  EXPECT_EQ(enc.Find("Wei Wang"), a);
  EXPECT_EQ(enc.Find("Nobody"), -1);
}

// --------------------------- FP-growth --------------------------------------

TEST(FpGrowthTest, RejectsBadOptions) {
  EXPECT_FALSE(FpGrowth({{1}}, {/*min_support=*/0}).ok());
  FpGrowthOptions bad;
  bad.max_itemset_size = -1;
  EXPECT_FALSE(FpGrowth({{1}}, bad).ok());
}

TEST(FpGrowthTest, EmptyInputYieldsNothing) {
  auto r = FpGrowth({}, {/*min_support=*/1});
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->empty());
}

TEST(FpGrowthTest, KnownSupportsOnClassicExample) {
  auto r = FpGrowth(ClassicTransactions(), {/*min_support=*/2});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(SupportOf(*r, {1}), 7);
  EXPECT_EQ(SupportOf(*r, {0}), 6);
  EXPECT_EQ(SupportOf(*r, {2}), 7);
  EXPECT_EQ(SupportOf(*r, {0, 1}), 4);
  EXPECT_EQ(SupportOf(*r, {0, 2}), 5);
  EXPECT_EQ(SupportOf(*r, {1, 2}), 5);
  EXPECT_EQ(SupportOf(*r, {0, 1, 2}), 3);
  EXPECT_EQ(SupportOf(*r, {1, 3}), 2);
  EXPECT_EQ(SupportOf(*r, {4}), -1);  // below support
}

TEST(FpGrowthTest, MaxItemsetSizeLimitsDepth) {
  auto r = FpGrowth(ClassicTransactions(), {/*min_support=*/2,
                                            /*max_itemset_size=*/2});
  ASSERT_TRUE(r.ok());
  for (const auto& fi : *r) EXPECT_LE(fi.items.size(), 2u);
  EXPECT_EQ(SupportOf(*r, {0, 1}), 4);  // pairs still present
  EXPECT_EQ(SupportOf(*r, {0, 1, 2}), -1);
}

TEST(FpGrowthTest, DuplicateItemsInTransactionCountOnce) {
  auto r = FpGrowth({{1, 1, 2}, {1, 2, 2}}, {/*min_support=*/2});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(SupportOf(*r, {1}), 2);
  EXPECT_EQ(SupportOf(*r, {1, 2}), 2);
}

TEST(FpGrowthTest, SingleItemTransactions) {
  auto r = FpGrowth({{5}, {5}, {7}}, {/*min_support=*/2});
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 1u);
  EXPECT_EQ((*r)[0].items, (std::vector<Item>{5}));
  EXPECT_EQ((*r)[0].support, 2);
}

// Parallel mining fans top-level conditional-tree projections over a
// thread pool with item-order concatenation: the result must be the exact
// sequence the serial miner emits — not merely the same set.
TEST(FpGrowthTest, ParallelMiningIsByteIdenticalToSerial) {
  iuad::Rng rng(91);
  std::vector<Transaction> txs;
  for (int i = 0; i < 200; ++i) {
    Transaction t;
    const int len = 1 + static_cast<int>(rng.NextBounded(7));
    for (int j = 0; j < len; ++j) {
      t.push_back(static_cast<Item>(rng.NextBounded(20)));
    }
    txs.push_back(std::move(t));
  }
  for (int max_size : {0, 2, 3}) {
    auto serial = FpGrowth(txs, {2, max_size, /*num_threads=*/1});
    auto parallel = FpGrowth(txs, {2, max_size, /*num_threads=*/4});
    auto auto_threads = FpGrowth(txs, {2, max_size, /*num_threads=*/0});
    ASSERT_TRUE(serial.ok());
    ASSERT_TRUE(parallel.ok());
    ASSERT_TRUE(auto_threads.ok());
    EXPECT_EQ(*serial, *parallel) << "max_size=" << max_size;
    EXPECT_EQ(*serial, *auto_threads) << "max_size=" << max_size;
  }
}

// Property test: FP-growth and Apriori must agree exactly on random inputs.
class MinerAgreementTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(MinerAgreementTest, FpGrowthMatchesApriori) {
  const auto [seed, min_support] = GetParam();
  iuad::Rng rng(static_cast<uint64_t>(seed));
  std::vector<Transaction> txs;
  const int n_tx = 60 + static_cast<int>(rng.NextBounded(60));
  for (int i = 0; i < n_tx; ++i) {
    Transaction t;
    const int len = 1 + static_cast<int>(rng.NextBounded(6));
    for (int j = 0; j < len; ++j) {
      t.push_back(static_cast<Item>(rng.NextBounded(12)));
    }
    txs.push_back(std::move(t));
  }
  auto fp = FpGrowth(txs, {min_support});
  auto ap = Apriori(txs, min_support);
  ASSERT_TRUE(fp.ok());
  ASSERT_TRUE(ap.ok());
  SortItemsets(&*fp);
  SortItemsets(&*ap);
  EXPECT_EQ(*fp, *ap) << "seed=" << seed << " min_support=" << min_support;
}

INSTANTIATE_TEST_SUITE_P(
    RandomInputs, MinerAgreementTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5, 6, 7, 8),
                       ::testing::Values(2, 3, 5)));

// Property: every itemset's support is the true containment count.
TEST(FpGrowthTest, ReportedSupportsAreExact) {
  iuad::Rng rng(77);
  std::vector<Transaction> txs;
  for (int i = 0; i < 80; ++i) {
    Transaction t;
    for (int j = 0; j < 5; ++j) {
      t.push_back(static_cast<Item>(rng.NextBounded(10)));
    }
    txs.push_back(t);
  }
  auto r = FpGrowth(txs, {3});
  ASSERT_TRUE(r.ok());
  for (const auto& fi : *r) {
    int64_t count = 0;
    for (auto t : txs) {
      std::sort(t.begin(), t.end());
      t.erase(std::unique(t.begin(), t.end()), t.end());
      if (std::includes(t.begin(), t.end(), fi.items.begin(), fi.items.end())) {
        ++count;
      }
    }
    EXPECT_EQ(fi.support, count);
  }
}

// Property: downward closure — every subset of a frequent itemset is
// frequent with support >= the superset's.
TEST(FpGrowthTest, DownwardClosureHolds) {
  iuad::Rng rng(78);
  std::vector<Transaction> txs;
  for (int i = 0; i < 70; ++i) {
    Transaction t;
    for (int j = 0; j < 6; ++j) {
      t.push_back(static_cast<Item>(rng.NextBounded(9)));
    }
    txs.push_back(std::move(t));
  }
  auto r = FpGrowth(txs, {2});
  ASSERT_TRUE(r.ok());
  auto support_of = [&](const std::vector<Item>& items) {
    for (const auto& fi : *r) {
      if (fi.items == items) return fi.support;
    }
    return static_cast<int64_t>(-1);
  };
  for (const auto& fi : *r) {
    if (fi.items.size() < 2) continue;
    for (size_t drop = 0; drop < fi.items.size(); ++drop) {
      std::vector<Item> sub;
      for (size_t k = 0; k < fi.items.size(); ++k) {
        if (k != drop) sub.push_back(fi.items[k]);
      }
      const int64_t s = support_of(sub);
      ASSERT_NE(s, -1);
      EXPECT_GE(s, fi.support);
    }
  }
}

// --------------------------- Apriori ----------------------------------------

TEST(AprioriTest, RejectsBadSupport) {
  EXPECT_FALSE(Apriori({{1}}, 0).ok());
}

TEST(AprioriTest, MaxSizeRespected) {
  auto r = Apriori(ClassicTransactions(), 2, /*max_itemset_size=*/1);
  ASSERT_TRUE(r.ok());
  for (const auto& fi : *r) EXPECT_EQ(fi.items.size(), 1u);
}

// --------------------------- PairCounter ------------------------------------

TEST(PairCounterTest, CountsUnorderedPairs) {
  PairCounter pc;
  pc.AddTransaction({1, 2, 3});
  pc.AddTransaction({2, 1});
  pc.AddTransaction({3, 1});
  EXPECT_EQ(pc.CountOf(1, 2), 2);
  EXPECT_EQ(pc.CountOf(2, 1), 2);  // symmetric
  EXPECT_EQ(pc.CountOf(1, 3), 2);
  EXPECT_EQ(pc.CountOf(2, 3), 1);
  EXPECT_EQ(pc.CountOf(1, 1), 0);  // self
  EXPECT_EQ(pc.CountOf(4, 5), 0);  // unseen
}

TEST(PairCounterTest, DuplicatesInTransactionCollapse) {
  PairCounter pc;
  pc.AddTransaction({7, 7, 8});
  EXPECT_EQ(pc.CountOf(7, 8), 1);
}

TEST(PairCounterTest, FrequentPairsThreshold) {
  PairCounter pc;
  pc.AddAll({{1, 2}, {1, 2}, {1, 3}});
  auto pairs = pc.FrequentPairs(2);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].items, (std::vector<Item>{1, 2}));
  EXPECT_EQ(pairs[0].support, 2);
}

TEST(PairCounterTest, AgreesWithFpGrowthOnPairs) {
  iuad::Rng rng(42);
  std::vector<Transaction> txs;
  for (int i = 0; i < 100; ++i) {
    Transaction t;
    for (int j = 0; j < 4; ++j) {
      t.push_back(static_cast<Item>(rng.NextBounded(15)));
    }
    txs.push_back(std::move(t));
  }
  PairCounter pc;
  pc.AddAll(txs);
  auto from_counter = pc.FrequentPairs(3);
  auto fp = FpGrowth(txs, {3, /*max_itemset_size=*/2});
  ASSERT_TRUE(fp.ok());
  std::vector<FrequentItemset> fp_pairs;
  for (const auto& fi : *fp) {
    if (fi.items.size() == 2) fp_pairs.push_back(fi);
  }
  SortItemsets(&from_counter);
  SortItemsets(&fp_pairs);
  EXPECT_EQ(from_counter, fp_pairs);
}

TEST(PairKeyTest, RoundTrip) {
  const uint64_t key = PairKey(123456, 654321);
  EXPECT_EQ(PairFirst(key), 123456);
  EXPECT_EQ(PairSecond(key), 654321);
}

}  // namespace
}  // namespace iuad::mining
