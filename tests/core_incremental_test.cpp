#include <gtest/gtest.h>

#include "core/incremental.h"
#include "core/pipeline.h"
#include "eval/evaluator.h"
#include "testing_utils.h"

namespace iuad::core {
namespace {

IuadConfig FastConfig() {
  IuadConfig cfg;
  cfg.word2vec.dim = 16;
  cfg.word2vec.epochs = 2;
  cfg.max_split_vertices = 50;
  return cfg;
}

TEST(IncrementalTest, RequiresFittedModel) {
  auto db = iuad::testing::Fig2Database();
  IuadPipeline pipeline(FastConfig());
  auto scn_only = pipeline.RunScnOnly(db);
  ASSERT_TRUE(scn_only.ok());
  IncrementalDisambiguator inc(&db, &*scn_only, FastConfig());
  auto r = inc.AddPaper(iuad::testing::MakePaper({"a", "b"}));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), iuad::StatusCode::kFailedPrecondition);
}

TEST(IncrementalTest, RejectsEmptyByline) {
  auto corpus = iuad::testing::SmallCorpus(31);
  IuadPipeline pipeline(FastConfig());
  auto result = pipeline.Run(corpus.db);
  ASSERT_TRUE(result.ok());
  data::PaperDatabase db = corpus.db;
  IncrementalDisambiguator inc(&db, &*result, FastConfig());
  data::Paper empty;
  EXPECT_FALSE(inc.AddPaper(empty).ok());
}

class IncrementalStreamTest : public ::testing::Test {
 protected:
  void SetUp() override {
    corpus_ = iuad::testing::SmallCorpus(32);
    // Hold out the most recent papers as the stream.
    auto [history, stream] = corpus_.db.HoldOutLatest(80);
    history_ = std::move(history);
    stream_ = std::move(stream);
    IuadPipeline pipeline(FastConfig());
    auto result = pipeline.Run(history_);
    ASSERT_TRUE(result.ok());
    result_ = std::make_unique<DisambiguationResult>(std::move(*result));
  }

  data::Corpus corpus_;
  data::PaperDatabase history_;
  std::vector<data::Paper> stream_;
  std::unique_ptr<DisambiguationResult> result_;
};

TEST_F(IncrementalStreamTest, IngestsWholeStreamMaintainingInvariants) {
  IncrementalDisambiguator inc(&history_, result_.get(), FastConfig());
  for (const auto& paper : stream_) {
    auto assignments = inc.AddPaper(paper);
    ASSERT_TRUE(assignments.ok()) << assignments.status().ToString();
    ASSERT_EQ(assignments->size(), paper.author_names.size());
    for (const auto& a : *assignments) {
      EXPECT_GE(a.vertex, 0);
      EXPECT_TRUE(result_->graph.alive(a.vertex));
      EXPECT_EQ(result_->graph.NameOf(a.vertex), a.name);
    }
  }
  EXPECT_EQ(inc.papers_ingested(), static_cast<int>(stream_.size()));
  // The database grew by exactly the stream.
  EXPECT_EQ(history_.num_papers(),
            corpus_.db.num_papers());
  // Every streamed occurrence is attributed.
  for (int pid = corpus_.db.num_papers() - static_cast<int>(stream_.size());
       pid < history_.num_papers(); ++pid) {
    for (const auto& name : history_.paper(pid).author_names) {
      EXPECT_GE(result_->occurrences.Lookup(pid, name), 0);
    }
  }
}

TEST_F(IncrementalStreamTest, AssignmentQualityStaysReasonable) {
  // Table VI's shape: incremental ingestion loses only a little accuracy
  // relative to the batch metrics on the same names.
  IncrementalDisambiguator inc(&history_, result_.get(), FastConfig());
  for (const auto& paper : stream_) {
    ASSERT_TRUE(inc.AddPaper(paper).ok());
  }
  std::vector<std::string> names = corpus_.TestNames(2);
  auto metrics = eval::EvaluateOccurrences(history_, result_->occurrences,
                                           names);
  EXPECT_GT(metrics.f1, 0.45);
  EXPECT_GT(metrics.precision, 0.5);
}

TEST_F(IncrementalStreamTest, KnownAuthorPaperJoinsExistingVertex) {
  // Stream a paper whose lead is a prolific author with a stable
  // collaborator set taken from the history: it should NOT found a new
  // author vertex.
  // Find a history paper by the most prolific ambiguous author.
  const auto names = corpus_.TestNames(2);
  ASSERT_FALSE(names.empty());
  // Pick the (name, author) with the most history papers.
  std::string best_name;
  data::AuthorId best_author = data::kUnknownAuthor;
  size_t best_count = 0;
  for (const auto& name : names) {
    std::unordered_map<data::AuthorId, size_t> by_author;
    for (int pid : history_.PapersWithName(name)) {
      const auto a = history_.paper(pid).TrueAuthorOfName(name);
      if (a != data::kUnknownAuthor && ++by_author[a] > best_count) {
        best_count = by_author[a];
        best_name = name;
        best_author = a;
      }
    }
  }
  ASSERT_GT(best_count, 3u);
  // Clone one of that author's history papers as a "new" publication.
  data::Paper clone;
  for (int pid : history_.PapersWithName(best_name)) {
    if (history_.paper(pid).TrueAuthorOfName(best_name) == best_author) {
      clone = history_.paper(pid);
      break;
    }
  }
  clone.id = -1;
  clone.year = corpus_.db.max_year();
  IncrementalDisambiguator inc(&history_, result_.get(), FastConfig());
  auto assignments = inc.AddPaper(clone);
  ASSERT_TRUE(assignments.ok());
  const auto& focal = (*assignments)[static_cast<size_t>(
      clone.PositionOfName(best_name))];
  EXPECT_FALSE(focal.created_new)
      << "prolific author's identical paper founded a new vertex";
  EXPECT_GT(focal.num_candidates, 0);
}

TEST_F(IncrementalStreamTest, UnknownNameCreatesNewVertex) {
  IncrementalDisambiguator inc(&history_, result_.get(), FastConfig());
  auto assignments = inc.AddPaper(iuad::testing::MakePaper(
      {"Qzx Unseen", "Wvb Fresh"}, "totally new topic", "Nowhere", 2021));
  ASSERT_TRUE(assignments.ok());
  for (const auto& a : *assignments) {
    EXPECT_TRUE(a.created_new);
    EXPECT_EQ(a.num_candidates, 0);
  }
  // The two new vertices are linked by the recovered relation.
  const auto& g = result_->graph;
  EXPECT_TRUE(g.NeighborsOf((*assignments)[0].vertex)
                  .count((*assignments)[1].vertex) > 0);
}

TEST_F(IncrementalStreamTest, RefreshIntervalTriggersRebuild) {
  IuadConfig cfg = FastConfig();
  cfg.incremental_refresh_interval = 5;
  IncrementalDisambiguator inc(&history_, result_.get(), cfg);
  for (int i = 0; i < 12 && i < static_cast<int>(stream_.size()); ++i) {
    ASSERT_TRUE(inc.AddPaper(stream_[static_cast<size_t>(i)]).ok());
  }
  EXPECT_EQ(inc.papers_ingested(), 12);
}

}  // namespace
}  // namespace iuad::core
